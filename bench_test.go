// Benchmarks regenerating the paper's tables and figures (DESIGN.md §4):
// one benchmark per experiment, each at reduced scale so the full suite
// completes in minutes. Savings percentages are reported as custom
// metrics; cmd/perseus-tables -scale full regenerates everything at the
// paper's parameters.
package perseus

import (
	"fmt"
	"io"
	"strconv"
	"testing"

	"perseus/internal/experiments"
	"perseus/internal/fleet"
	"perseus/internal/frontier"
	"perseus/internal/gpu"
	"perseus/internal/grid"
	"perseus/internal/maxflow"
	"perseus/internal/model"
	"perseus/internal/obs"
	"perseus/internal/partition"
	"perseus/internal/plan"
	"perseus/internal/profile"
	"perseus/internal/region"
	"perseus/internal/server"
)

// benchScale keeps each experiment iteration around a second.
var benchScale = experiments.Scale{MaxMicrobatches: 8, TargetSteps: 200}

func reportSavings(b *testing.B, tab *experiments.Table, col int, metric string) {
	b.Helper()
	var sum float64
	var n int
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			continue
		}
		sum += v
		n++
	}
	if n > 0 {
		b.ReportMetric(sum/float64(n), metric)
	}
}

func BenchmarkTable1ImbalanceRatios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.Figure1(io.Discard, "gpt3-1.3b", benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPotentialSavings(b *testing.B) {
	var tab *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.PotentialSavings(gpu.A100PCIe, experiments.A100Workloads()[:2], benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSavings(b, tab, 1, "potential-%")
}

func benchTable3(b *testing.B, g *gpu.Model, cfgs []experiments.WorkloadConfig) {
	var tab *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.Table3(g, cfgs[:2], benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSavings(b, tab, 1, "perseus-%")
	reportSavings(b, tab, 2, "envpipe-%")
}

func BenchmarkTable3IntrinsicA100(b *testing.B) {
	benchTable3(b, gpu.A100PCIe, experiments.A100Workloads())
}

func BenchmarkTable3IntrinsicA40(b *testing.B) {
	benchTable3(b, gpu.A40, experiments.A40Workloads())
}

func benchTable4(b *testing.B, g *gpu.Model, cfgs []experiments.WorkloadConfig) {
	var tab *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.Table4(g, cfgs[:1], benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Column for slowdown 1.2 (third slowdown in the header).
	reportSavings(b, tab, 4, "savings-at-1.2-%")
}

func BenchmarkTable4StragglerA100(b *testing.B) {
	benchTable4(b, gpu.A100PCIe, experiments.A100Workloads())
}

func BenchmarkTable4StragglerA40(b *testing.B) {
	benchTable4(b, gpu.A40, experiments.A40Workloads())
}

func BenchmarkTable6Emulation(b *testing.B) {
	// One emulation cell: Bloom 176B at the smallest Table 5 point.
	for i := 0; i < b.N; i++ {
		sys, err := experiments.BuildSystem(experiments.WorkloadConfig{
			Display: "Bloom 176B", Model: "bloom-176b", Stages: 8,
			MicrobatchSize: 1, Microbatches: 12, TensorParallel: 8,
		}, gpu.A100SXM, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sys.SimulatePlan(sys.PerseusPlan(0))
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(100*(1-res.Energy/sys.Base.Energy), "intrinsic-%")
		}
	}
}

func BenchmarkFigure7Breakdown(b *testing.B) {
	// One breakdown cell (GPT-3 175B on A100) instead of the full grid.
	for i := 0; i < b.N; i++ {
		sys, err := experiments.BuildSystem(experiments.WorkloadConfig{
			Display: "GPT-3 175B", Model: "gpt3-175b", Stages: 8,
			MicrobatchSize: 1, Microbatches: 12, TensorParallel: 8,
		}, gpu.A100SXM, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		intrinsic, both, err := sys.StragglerBreakdown(16, 1.2)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(100*intrinsic, "intrinsic-%")
			b.ReportMetric(100*both, "intrinsic+extrinsic-%")
		}
	}
}

func BenchmarkFigure8StragglerSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure8("bloom-176b", "Bloom 176B", gpu.A100SXM,
			experiments.Scale{MaxMicrobatches: 8, TargetSteps: 150}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9Frontiers(b *testing.B) {
	panel := experiments.Figure9Configs()[0]
	for i := 0; i < b.N; i++ {
		sys, err := experiments.BuildSystem(panel.Config, panel.GPU, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.FrontierComparison(sys, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11Fit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure12Frontiers(b *testing.B) {
	cfg := experiments.A40Workloads()[1] // BERT on A40, 8 stages
	for i := 0; i < b.N; i++ {
		sys, err := experiments.BuildSystem(cfg, gpu.A40, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.FrontierComparison(sys, 15); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure13Frontiers(b *testing.B) {
	cfg := experiments.A100Workloads()[1] // BERT on A100, 4 stages
	for i := 0; i < b.N; i++ {
		sys, err := experiments.BuildSystem(cfg, gpu.A100PCIe, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiments.FrontierComparison(sys, 15); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizerRuntime(b *testing.B) {
	// §6.5: frontier characterization cost for the GPT-3 A100 workload.
	cfg := experiments.A100Workloads()[0]
	for i := 0; i < b.N; i++ {
		sys, err := experiments.BuildSystem(cfg, gpu.A100PCIe,
			experiments.Scale{MaxMicrobatches: 16, TargetSteps: 400})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(sys.Frontier.Points())), "frontier-points")
	}
}

func BenchmarkScheduleLookup(b *testing.B) {
	// §6.5: "Looking up the optimal energy schedule ... is instantaneous."
	sys, err := experiments.BuildSystem(experiments.A100Workloads()[0], gpu.A100PCIe, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	tmin := sys.Frontier.Tmin()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sys.Frontier.Lookup(tmin * (1 + float64(i%50)/100))
	}
}

func BenchmarkClusterSimulation(b *testing.B) {
	sys, err := experiments.BuildSystem(experiments.A100Workloads()[0], gpu.A100PCIe, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	plan := sys.PerseusPlan(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.SimulatePlan(plan); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGreedyVsMinCut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationGreedy(experiments.A100Workloads()[0], gpu.A100PCIe, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFitChoice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationFit(experiments.A100Workloads()[0], gpu.A100PCIe, benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationTau(b *testing.B) {
	cfg := experiments.WorkloadConfig{
		Display: "GPT-3 1.3B", Model: "gpt3-1.3b", Stages: 2,
		MicrobatchSize: 4, Microbatches: 4,
	}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationTau(cfg, gpu.A100PCIe, []float64{20e-3, 5e-3}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFleet builds a synthetic fleet of convex frontiers (E = a + b/t,
// the family the allocator's optimality tests use) so the fleet hot
// path benchmarks without paying for characterization.
func benchFleet(n int) []fleet.Job {
	jobs := make([]fleet.Job, n)
	for i := range jobs {
		tmin := int64(60 + 17*(i%8))
		lt := &frontier.LookupTable{Unit: 0.01, TminUnits: tmin, TStarUnits: tmin + 40}
		for u := tmin; u <= tmin+40; u++ {
			t := float64(u) * lt.Unit
			lt.Points = append(lt.Points, frontier.TablePoint{
				TimeUnits: u,
				Energy:    2000 + 300*float64(i%5) + (100+25*float64(i%7))/t,
			})
		}
		jobs[i] = fleet.Job{
			ID:        fmt.Sprintf("job-%d", i),
			Table:     lt,
			Pipelines: 1 + i%3,
			Weight:    1 + float64(i%4)/2,
		}
	}
	return jobs
}

// BenchmarkFleetAllocate measures the power-budget allocator — the
// fleet layer's hot path, re-run on every arrival, departure,
// straggler, and cap or grid-signal change.
func BenchmarkFleetAllocate(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("jobs-%d", n), func(b *testing.B) {
			jobs := benchFleet(n)
			capW := fleet.Allocate(jobs, 0).PowerW * 0.9
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				alloc := fleet.Allocate(jobs, capW)
				if !alloc.Feasible {
					b.Fatal("benchmark cap unexpectedly infeasible")
				}
			}
		})
	}
}

// BenchmarkFrontierMerge measures merging N characterized frontiers
// into the fleet-level descent Allocate consumes.
func BenchmarkFrontierMerge(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("tables-%d", n), func(b *testing.B) {
			jobs := benchFleet(n)
			inputs := make([]frontier.MergeInput, len(jobs))
			for i, j := range jobs {
				inputs[i] = frontier.MergeInput{
					Table:      j.Table,
					PowerScale: float64(j.Pipelines),
					LossWeight: j.Weight,
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, steps := frontier.Merge(inputs); len(steps) == 0 {
					b.Fatal("degenerate merge")
				}
			}
		})
	}
}

// BenchmarkGridOptimize measures the temporal planner — the inner
// solver every region placement evaluation and every forecast re-plan
// runs, so its cost multiplies through both outer layers.
func BenchmarkGridOptimize(b *testing.B) {
	lt := benchFleet(1)[0].Table
	for _, n := range []int{24, 96, 288} {
		b.Run(fmt.Sprintf("intervals-%d", n), func(b *testing.B) {
			sig := grid.Generate(grid.GenOptions{Intervals: n, IntervalS: 86400 / float64(n), Jitter: 0.1, Seed: 3})
			target := 0.55 * sig.Horizon() / lt.TStar()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan, err := grid.Optimize(lt, sig, grid.Options{Target: target})
				if err != nil {
					b.Fatal(err)
				}
				if !plan.Feasible {
					b.Fatal("benchmark target unexpectedly infeasible")
				}
			}
		})
	}
}

// BenchmarkRegionPlan measures the joint spatio-temporal planner on
// the bundled phase-shifted pair — the synchronous cost behind GET
// /regions/plan and each multi-region re-plan.
func BenchmarkRegionPlan(b *testing.B) {
	for _, nJobs := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("jobs-%d", nJobs), func(b *testing.B) {
			regions, jobs, opts := benchRegionCase(nJobs)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan, err := region.Optimize(regions, jobs, opts)
				if err != nil {
					b.Fatal(err)
				}
				if !plan.Feasible {
					b.Fatal("benchmark plan unexpectedly infeasible")
				}
			}
		})
	}
}

// benchRegionCase builds the BenchmarkRegionPlan inputs: the bundled
// phase-shifted pair scaled to the job count, with migration friction.
func benchRegionCase(nJobs int) ([]region.Region, []region.Job, region.Options) {
	regions := region.PhaseShiftedPair(8 * nJobs)
	fl := benchFleet(nJobs)
	jobs := make([]region.Job, nJobs)
	for i, fj := range fl {
		jobs[i] = region.Job{
			ID: fj.ID, Table: fj.Table, GPUs: 8,
			Target: 0.4 * regions[0].Signal.Horizon() / fj.Table.TStar(),
		}
	}
	return regions, jobs, region.Options{Migration: region.MigrationCost{DowntimeS: 600, EnergyJ: 5e6}}
}

// BenchmarkRegionPlanWarm measures the MPC tick-to-tick re-plan: the
// previous solve's placement is fed back through Options.Seeds, so
// descent starts at (or next to) the optimum instead of from the
// generic single-region and rate-envelope candidates — the warm path
// forecast.ReplanRegions takes when a revision leaves the remaining
// window unchanged.
func BenchmarkRegionPlanWarm(b *testing.B) {
	for _, nJobs := range []int{2, 8} {
		b.Run(fmt.Sprintf("jobs-%d", nJobs), func(b *testing.B) {
			regions, jobs, opts := benchRegionCase(nJobs)
			cold, err := region.Optimize(regions, jobs, opts)
			if err != nil {
				b.Fatal(err)
			}
			seeds := make(map[string][]region.SeedSpan, len(cold.Jobs))
			for _, jp := range cold.Jobs {
				spans := make([]region.SeedSpan, 0, len(jp.Assignments))
				for _, a := range jp.Assignments {
					name := ""
					if a.Region >= 0 {
						name = cold.Regions[a.Region]
					}
					spans = append(spans, region.SeedSpan{StartS: a.StartS, EndS: a.EndS, Region: name})
				}
				seeds[jp.JobID] = spans
			}
			opts.Seeds = seeds
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan, err := region.Optimize(regions, jobs, opts)
				if err != nil {
					b.Fatal(err)
				}
				if !plan.Feasible {
					b.Fatal("benchmark plan unexpectedly infeasible")
				}
			}
		})
	}
}

// benchServer builds a server with one characterized job and a
// 288-interval signal installed — the /grid/plan hot path's inputs.
func benchServer(b *testing.B) (*server.Server, string, float64) {
	b.Helper()
	srv := server.New()
	id, err := srv.Register(server.JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	})
	if err != nil {
		b.Fatal(err)
	}
	g := gpu.A100PCIe
	m, err := model.GPT3("1.3b")
	if err != nil {
		b.Fatal(err)
	}
	part, err := partition.MinImbalance(m.LayerCosts(), 2)
	if err != nil {
		b.Fatal(err)
	}
	w := profile.Workload{
		Model: m, GPU: g, Stages: 2, Chunks: 1,
		Partition: part.Boundaries, MicrobatchSize: 4, TensorParallel: 1,
	}
	refs, err := w.StageRefTimes()
	if err != nil {
		b.Fatal(err)
	}
	up := server.ProfileUpload{PBlocking: profile.MeasurePBlocking(g)}
	for v, ref := range refs {
		for _, f := range g.Frequencies() {
			up.Measurements = append(up.Measurements,
				server.MeasurementJSON{Virtual: v, Kind: "forward", Freq: int(f),
					Time: g.Time(ref, f, g.MemBoundFwd), Energy: g.Energy(ref, f, g.MemBoundFwd)},
				server.MeasurementJSON{Virtual: v, Kind: "backward", Freq: int(f),
					Time: g.Time(2*ref, f, g.MemBoundBwd), Energy: g.Energy(2*ref, f, g.MemBoundBwd)})
		}
	}
	if err := srv.UploadProfile(id, up); err != nil {
		b.Fatal(err)
	}
	if err := srv.WaitCharacterized(id); err != nil {
		b.Fatal(err)
	}
	sig := grid.Generate(grid.GenOptions{Intervals: 288, IntervalS: 300, Jitter: 0.1, Seed: 3})
	if _, err := srv.SetGridSignal(*sig, ""); err != nil {
		b.Fatal(err)
	}
	lt, err := srv.Table(id)
	if err != nil {
		b.Fatal(err)
	}
	target := 0.5 * sig.Horizon() / lt.TStar()
	return srv, id, target
}

// BenchmarkServerPlanCold measures /grid/plan's solve path with every
// request missing the cache (each iteration asks a new target), i.e.
// the pre-cache behavior of the endpoint.
func BenchmarkServerPlanCold(b *testing.B) {
	srv, id, target := benchServer(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := srv.GridPlan(id, target+float64(i)*1e-6, 0, "")
		if err != nil {
			b.Fatal(err)
		}
		if !plan.Feasible {
			b.Fatal("benchmark target unexpectedly infeasible")
		}
	}
}

// BenchmarkServerPlanCached measures the same request stream when
// every request after the first hits the single-flight plan cache —
// the acceptance bar is ≥10× over BenchmarkServerPlanCold.
func BenchmarkServerPlanCached(b *testing.B) {
	srv, id, target := benchServer(b)
	if _, err := srv.GridPlan(id, target, 0, ""); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := srv.GridPlan(id, target, 0, "")
		if err != nil {
			b.Fatal(err)
		}
		if !plan.Feasible {
			b.Fatal("benchmark target unexpectedly infeasible")
		}
	}
}

// BenchmarkLedgerSettle measures the energy-bloat ledger's settlement
// path once every job's ring is full — the steady state each controller
// tick and emissions read pays per job. The acceptance bar is O(1) and
// allocation-free settlement regardless of job count or history length.
func BenchmarkLedgerSettle(b *testing.B) {
	entry := obs.LedgerEntry{
		StartUnixS: 1.7e9, EndUnixS: 1.7e9 + 600, Kind: obs.LedgerKindSpan,
		BloatSpan: plan.DecomposeSpan(plan.SpanInputs{
			Realized:   plan.Account{EnergyJ: 3.6e6, CarbonG: 500, CostUSD: 0.2},
			Iterations: 120, FloorJ: 3.0e6, TminJ: 3.3e6, MigrationJ: 1e5,
			MeanGPerJ: 200 / 3.6e6, PredC: 480, PredRealC: 495,
		}),
	}
	for _, jobs := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("jobs-%d", jobs), func(b *testing.B) {
			led := obs.NewLedger(0)
			ids := make([]string, jobs)
			for i := range ids {
				ids[i] = fmt.Sprintf("job-%d", i)
			}
			// Fill every ring past capacity so the timed loop measures
			// pure overwrite-and-accumulate, never ring growth.
			for _, id := range ids {
				for k := 0; k < obs.DefaultLedgerRing+1; k++ {
					led.Settle(id, entry)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				led.Settle(ids[i%jobs], entry)
			}
		})
	}
}

func BenchmarkAblationMaxFlowSolver(b *testing.B) {
	// Edmonds-Karp (the paper's solver) vs Dinic on the same workload.
	cfg := experiments.A100Workloads()[0]
	for _, solver := range []struct {
		name string
		s    maxflow.Solver
	}{{"edmonds-karp", maxflow.EdmondsKarp}, {"dinic", maxflow.Dinic}} {
		b.Run(solver.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				graph, prof, unit, err := experiments.BuildForAblation(cfg, gpu.A100PCIe, benchScale)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := frontier.Characterize(graph, prof, frontier.Options{
					Unit: unit, Solver: solver.s,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
