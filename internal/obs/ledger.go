package obs

import (
	"math"
	"sort"
	"sync"

	"perseus/internal/plan"
)

// Ledger entry kinds.
const (
	LedgerKindSpan      = "span"      // a settled accrual interval of deployed training
	LedgerKindMigration = "migration" // a pure migration-overhead charge
)

// LedgerEntry is one settled interval of a job's energy-bloat ledger:
// the wall-clock span plus its decomposition (plan.DecomposeSpan).
type LedgerEntry struct {
	StartUnixS float64 `json:"start_unix_s"`
	EndUnixS   float64 `json:"end_unix_s"`
	Kind       string  `json:"kind"`
	plan.BloatSpan
}

// LedgerTotals are cumulative ledger sums: entry counts plus the
// field-wise BloatSpan accumulation (whose conservation identities
// survive summation) and the monotone absolute drift used for the
// drift-SLO ratio (signed drift cancels across spans; burn must not).
type LedgerTotals struct {
	// Entries counts settled intervals; Dropped counts ring entries the
	// bounded history has overwritten (totals still include them).
	Entries int `json:"entries"`
	Dropped int `json:"dropped"`
	plan.BloatSpan
	AbsDriftC float64 `json:"abs_drift_c"`
}

// JobLedgerView is one job's ledger: cumulative totals plus the most
// recent retained entries, oldest first.
type JobLedgerView struct {
	JobID   string        `json:"job_id"`
	Totals  LedgerTotals  `json:"totals"`
	Entries []LedgerEntry `json:"entries"`
}

// jobLedger is one job's ring of recent entries plus running totals.
// The ring is a fixed-capacity circular buffer so steady-state Settle
// allocates nothing.
type jobLedger struct {
	ring   []LedgerEntry
	head   int // next write position
	n      int // live entries, <= cap(ring)
	totals LedgerTotals
}

// DefaultLedgerRing is the per-job retained-entry cap when NewLedger is
// given 0.
const DefaultLedgerRing = 256

// Ledger is the concurrency-safe per-job energy-bloat ledger: a bounded
// ring of recent settled intervals per job, monotone cumulative totals
// per job, and a fleet-wide rollup. Settle is O(1) and allocation-free
// once a job's ring exists; everything is guarded by one mutex (settle
// happens at controller ticks and emissions settlements, never on the
// cached-plan hot path).
type Ledger struct {
	mu      sync.Mutex
	ringCap int
	jobs    map[string]*jobLedger
	fleet   LedgerTotals
}

// NewLedger builds an empty ledger retaining up to ringCap entries per
// job (0 uses DefaultLedgerRing).
func NewLedger(ringCap int) *Ledger {
	if ringCap <= 0 {
		ringCap = DefaultLedgerRing
	}
	return &Ledger{ringCap: ringCap, jobs: map[string]*jobLedger{}}
}

// Settle appends one settled interval to the job's ledger and folds it
// into the job's and the fleet's cumulative totals.
func (l *Ledger) Settle(jobID string, e LedgerEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	jl, ok := l.jobs[jobID]
	if !ok {
		jl = &jobLedger{ring: make([]LedgerEntry, l.ringCap)}
		l.jobs[jobID] = jl
	}
	jl.ring[jl.head] = e
	jl.head = (jl.head + 1) % len(jl.ring)
	if jl.n < len(jl.ring) {
		jl.n++
	} else {
		jl.totals.Dropped++
	}
	accumulate(&jl.totals, e)
	accumulate(&l.fleet, e)
}

// accumulate folds one entry into totals.
func accumulate(t *LedgerTotals, e LedgerEntry) {
	t.Entries++
	t.BloatSpan.Accumulate(e.BloatSpan)
	t.AbsDriftC += math.Abs(e.DriftC)
}

// Job returns the job's ledger view with up to n most recent entries
// (n <= 0 returns every retained entry), oldest first. ok is false for
// a job the ledger has never settled.
func (l *Ledger) Job(jobID string, n int) (JobLedgerView, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	jl, ok := l.jobs[jobID]
	if !ok {
		return JobLedgerView{JobID: jobID}, false
	}
	count := jl.n
	if n > 0 && n < count {
		count = n
	}
	view := JobLedgerView{JobID: jobID, Totals: jl.totals, Entries: make([]LedgerEntry, 0, count)}
	for i := count; i > 0; i-- {
		view.Entries = append(view.Entries, jl.ring[(jl.head-i+len(jl.ring))%len(jl.ring)])
	}
	return view, true
}

// Jobs lists the job IDs the ledger holds, sorted.
func (l *Ledger) Jobs() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	ids := make([]string, 0, len(l.jobs))
	for id := range l.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Fleet returns the fleet-wide cumulative totals. Removed jobs stay
// counted: fleet history must not rewrite itself when a job leaves.
func (l *Ledger) Fleet() LedgerTotals {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fleet
}

// Remove drops a job's ledger (ring and per-job totals), reporting
// whether it existed. Fleet totals retain the job's contribution.
func (l *Ledger) Remove(jobID string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.jobs[jobID]
	delete(l.jobs, jobID)
	return ok
}

// WorstDriftJob returns the job with the highest forecast-drift burn
// ratio |drift| / (|drift| + forecast-covered realized carbon) — the
// same ratio the fleet drift SLO evaluates — and that ratio. Jobs with
// no forecast-covered accrual are skipped; ("", 0) when none qualify.
func (l *Ledger) WorstDriftJob() (string, float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	worst, worstRatio := "", -1.0
	for id, jl := range l.jobs {
		denom := jl.totals.AbsDriftC + jl.totals.PredRealC
		if denom <= 0 {
			continue
		}
		ratio := jl.totals.AbsDriftC / denom
		if ratio > worstRatio || (ratio == worstRatio && id < worst) {
			worst, worstRatio = id, ratio
		}
	}
	if worst == "" {
		return "", 0
	}
	return worst, worstRatio
}
