package grid

import (
	"fmt"
	"math"

	"perseus/internal/frontier"
	"perseus/internal/plan"
)

// Objective selects what a temporal plan minimizes. It is an alias of
// plan.Objective — the shared vocabulary every planning layer uses.
type Objective = plan.Objective

const (
	// ObjectiveCarbon minimizes total gCO₂ emitted.
	ObjectiveCarbon = plan.ObjectiveCarbon

	// ObjectiveCost minimizes total electricity cost in $.
	ObjectiveCost = plan.ObjectiveCost

	// ObjectiveEnergy minimizes total energy in joules, ignoring the
	// signal's rates (useful as a signal-blind control).
	ObjectiveEnergy = plan.ObjectiveEnergy
)

// ParseObjective maps a string to an Objective ("" means carbon).
func ParseObjective(s string) (Objective, error) {
	return plan.ParseObjective(s)
}

// PerJoule returns the objective's weight of one joule consumed during
// the interval.
func PerJoule(o Objective, iv Interval) float64 {
	switch o {
	case ObjectiveCost:
		return iv.PriceUSDPerKWh / JoulesPerKWh
	case ObjectiveEnergy:
		return 1
	default: // carbon
		return iv.CarbonGPerKWh / JoulesPerKWh
	}
}

// Options parameterizes the temporal planner.
type Options struct {
	// Target is the number of iterations to complete; must be positive.
	Target float64

	// DeadlineS is the completion deadline in seconds from trace start;
	// 0 means the signal's horizon. It may not exceed the horizon.
	DeadlineS float64

	// Objective selects what to minimize; "" means carbon.
	Objective Objective

	// PowerScale multiplies the table's per-point average power, e.g.
	// the number of data-parallel pipeline replicas. <= 0 means 1.
	PowerScale float64

	// NoIdle forbids pausing: every interval must run some frontier
	// point (except intervals whose cap excludes every point). Without
	// it the planner may idle the job through dirty hours — temporal
	// load shifting. With it the plan may overshoot Target, since the
	// slowest point still makes progress.
	NoIdle bool
}

// Slice is a run of one frontier point within an interval.
type Slice struct {
	// Point indexes the job's lookup table.
	Point int `json:"point"`

	// Seconds is the time spent at the point within the interval.
	Seconds float64 `json:"seconds"`
}

// IntervalPlan is the plan for one signal interval: the point slices to
// run (at most two — the optimum time-shares adjacent descent states in
// at most one interval) with the remainder idle.
type IntervalPlan struct {
	// Index is the interval's position in the signal.
	Index int `json:"index"`

	// StartS and EndS bound the interval (the last may be cut by the
	// deadline).
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`

	// CarbonGPerKWh and PriceUSDPerKWh echo the interval's rates.
	CarbonGPerKWh  float64 `json:"carbon_g_per_kwh"`
	PriceUSDPerKWh float64 `json:"price_usd_per_kwh"`

	// Slices are the planned runs; empty means the job idles throughout.
	Slices []Slice `json:"slices,omitempty"`

	// IdleS is the planned pause time within the interval.
	IdleS float64 `json:"idle_s"`

	// Iterations and the embedded plan.Account are the interval's
	// planned outcomes.
	Iterations float64 `json:"iterations"`
	plan.Account
}

// Plan is a temporal frequency-plan schedule: one operating choice per
// signal interval minimizing the objective subject to the deadline.
type Plan struct {
	// Objective is what the plan minimizes.
	Objective Objective `json:"objective"`

	// Target and DeadlineS echo the planning inputs.
	Target    float64 `json:"target_iterations"`
	DeadlineS float64 `json:"deadline_s"`

	// Feasible reports whether the target fits before the deadline.
	// When it does not, the plan runs every interval at its fastest
	// allowed point (the best-effort maximum).
	Feasible bool `json:"feasible"`

	// Iterations and the embedded plan.Account total the plan.
	Iterations float64 `json:"iterations"`
	plan.Account

	// FinishS is the time the target is reached, assuming each
	// interval's slices run back-to-back from the interval start; -1
	// when the plan never reaches it (infeasible). Kept finite so the
	// plan always survives JSON encoding.
	FinishS float64 `json:"finish_s"`

	// Intervals holds the per-interval plans in time order.
	Intervals []IntervalPlan `json:"intervals"`
}

// Summarize implements plan.Result.
func (p *Plan) Summarize() plan.Summary {
	return plan.Summary{
		Account:    p.Account,
		Iterations: p.Iterations,
		Plans:      1,
		Feasible:   p.Feasible,
	}
}

// Total reads the plan total matching its objective.
func (p *Plan) Total() float64 { return p.Account.Total(p.Objective) }

// Planner adapts the temporal planner to the shared plan.Planner
// contract: one characterized job's lookup table over one signal.
type Planner struct {
	// Table is the job's characterized frontier lookup table.
	Table *frontier.LookupTable

	// Signal is the grid trace to plan over.
	Signal *Signal

	// NoIdle forbids pausing (Options.NoIdle).
	NoIdle bool
}

// Name implements plan.Planner.
func (p *Planner) Name() string { return "grid" }

// Plan implements plan.Planner.
func (p *Planner) Plan(req plan.Request) (plan.Result, error) {
	return Optimize(p.Table, p.Signal, Options{
		Target:     req.Target,
		DeadlineS:  req.DeadlineS,
		Objective:  req.Objective,
		PowerScale: req.PowerScale,
		NoIdle:     p.NoIdle,
	})
}

// planInterval is the solver's working state for one interval.
type planInterval struct {
	iv   Interval
	dur  float64
	perJ float64 // objective weight per joule
	lo   int     // fastest allowed point under the interval cap
	only bool    // idle-only: even the slowest point violates the cap
	cur  int     // current descent state; -1 = idle
}

// step is one marginal segment of an interval's cost-vs-iterations
// frontier: moving the interval from state `from` (-1 = idle) to state
// `to` buys dw iterations at cost dc. Segments are divisible — taking
// fraction f of a step time-shares the two states within the interval.
type step struct {
	from, to int
	dw, dc   float64
}

// fracStep is the single partially taken step of a solution: fraction
// f of interval k's step st (f·dur seconds at st.to, the rest at
// st.from or idle).
type fracStep struct {
	k  int
	st step
	f  float64
}

// solution is the solver outcome, carrying the normalized inputs it
// was solved under. Whole steps live in stacks; at most one step is
// fractional. A solution's buffers are reusable: solving into the same
// value again truncates and refills them instead of re-allocating.
type solution struct {
	ivs      []planInterval
	stacks   [][]step
	heap     []heapItem
	frac     *fracStep
	fracBuf  fracStep
	coverage float64
	cost     float64
	feasible bool
	maxCover float64
	deadline float64
	scale    float64
	obj      Objective
}

// heapItem is one interval's currently available step in the greedy's
// min-heap, keyed by marginal slope with the interval index as the
// tie-break — lexicographic (slope, k) ordering reproduces exactly the
// strict-< first-index-wins selection of a sequential scan.
type heapItem struct {
	slope float64
	k     int32
	st    step
}

func stepLess(a, b heapItem) bool {
	return a.slope < b.slope || (a.slope == b.slope && a.k < b.k)
}

func (sol *solution) siftDown(i int) {
	n := len(sol.heap)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && stepLess(sol.heap[l], sol.heap[min]) {
			min = l
		}
		if r < n && stepLess(sol.heap[r], sol.heap[min]) {
			min = r
		}
		if min == i {
			return
		}
		sol.heap[i], sol.heap[min] = sol.heap[min], sol.heap[i]
		i = min
	}
}

// heapify orders an appended-unordered heap in O(n). The comparator is
// a strict total order ((slope, k) with unique k), so the pop sequence
// is independent of how the heap was built.
func (sol *solution) heapify() {
	for i := len(sol.heap)/2 - 1; i >= 0; i-- {
		sol.siftDown(i)
	}
}

// dropTop removes the heap minimum. Taking a step and re-inserting the
// same interval's next one instead goes through replaceTop — one
// sift-down, no sift-up — which pops in exactly the same order as a
// pop-then-push would (the comparator is a strict total order).
func (sol *solution) dropTop() {
	last := len(sol.heap) - 1
	sol.heap[0] = sol.heap[last]
	sol.heap = sol.heap[:last]
	sol.siftDown(0)
}

func (sol *solution) replaceTop(k int32, st step) {
	sol.heap[0] = heapItem{slope: st.dc / st.dw, k: k, st: st}
	sol.siftDown(0)
}

// nextStep returns interval k's next available marginal step: wake up
// at the slowest allowed point, then one point faster at a time, until
// the interval saturates at its cap floor.
func (sol *solution) nextStep(lt *frontier.LookupTable, n, k int) (step, bool) {
	pi := &sol.ivs[k]
	if pi.only || pi.cur == pi.lo {
		return step{}, false
	}
	if pi.cur < 0 {
		// First step: wake up at the slowest allowed point.
		to := n - 1
		if to < pi.lo {
			to = pi.lo
		}
		return step{from: -1, to: to,
			dw: pi.dur / lt.PointTime(to),
			dc: pi.perJ * sol.scale * lt.AvgPower(to) * pi.dur}, true
	}
	to := pi.cur - 1
	return step{from: pi.cur, to: to,
		dw: pi.dur/lt.PointTime(to) - pi.dur/lt.PointTime(pi.cur),
		dc: pi.perJ * sol.scale * pi.dur * (lt.AvgPower(to) - lt.AvgPower(pi.cur))}, true
}

// request maps the options to the shared planning request.
func (o Options) request() plan.Request {
	return plan.Request{
		Target:     o.Target,
		DeadlineS:  o.DeadlineS,
		Objective:  o.Objective,
		PowerScale: o.PowerScale,
	}
}

// normalize validates the planning inputs shared by Optimize and Fixed
// and resolves the option defaults through the shared plan.Request
// rules: deadline 0 means the signal horizon (and may not exceed it),
// PowerScale <= 0 means 1, objective "" means carbon.
func normalize(lt *frontier.LookupTable, sig *Signal, opts Options) (deadline, scale float64, obj Objective, err error) {
	if lt == nil || len(lt.Points) == 0 {
		return 0, 0, "", fmt.Errorf("grid: planning needs a characterized frontier table")
	}
	if sig == nil {
		return 0, 0, "", fmt.Errorf("grid: planning needs a signal")
	}
	if err := sig.Validate(); err != nil {
		return 0, 0, "", err
	}
	req := opts.request()
	if err := req.Validate(); err != nil {
		return 0, 0, "", err
	}
	if deadline, err = req.ResolveDeadline(sig.Horizon()); err != nil {
		return 0, 0, "", err
	}
	obj, _ = ParseObjective(string(opts.Objective))
	return deadline, req.Scale(), obj, nil
}

// Optimize plans a job's temporal schedule over the signal: one
// frontier operating point (or pause) per interval, minimizing the
// objective subject to completing opts.Target iterations by the
// deadline and to each interval's facility power cap.
//
// The solver is a greedy ascent over the merged per-interval marginal
// segments, the temporal analogue of fleet.Allocate's marginal-cost
// waterfilling: every interval starts at its cheapest state (idle, or
// the minimum-energy point under NoIdle), and the planner repeatedly
// buys iterations at the cheapest marginal objective cost — waking an
// interval at its minimum-energy point or stepping it one point
// faster — taking the final step fractionally (time-sharing the two
// states within the interval) so the plan completes the target
// exactly.
//
// Optimality: per interval, cost is rate × scale × P(t) × d and
// iterations are d/t, so cost as a function of iterations — with idle
// allowed, through the origin — is the perspective function of the
// energy curve E(t): convex whenever E is. Every segment is divisible
// (any point may run for any fraction of its interval), so the global
// problem is a separable convex allocation whose exact optimum is the
// greedy fill in marginal-cost order with at most one fractional
// segment. plan_test.go verifies exactness against continuous
// brute-force enumeration (every per-interval point choice plus every
// single time-shared interval).
func Optimize(lt *frontier.LookupTable, sig *Signal, opts Options) (*Plan, error) {
	var s Solver
	return s.Optimize(lt, sig, opts)
}

// Solver is a reusable temporal-planner instance: repeated Optimize and
// Evaluate calls on one Solver share the greedy's working buffers, so
// hot callers — the region planner's candidate descent evaluates tens
// of thousands of composite signals per plan — avoid re-allocating the
// per-interval state on every solve. The zero value is ready; a Solver
// is not safe for concurrent use.
type Solver struct {
	sol solution
	buf []Slice
}

// Evaluation is the totals-only outcome of a solve: what candidate
// comparison needs, computed with arithmetic identical to Optimize's
// plan assembly but without materializing any per-interval plans.
type Evaluation struct {
	// Feasible reports whether the target fits before the deadline.
	Feasible bool

	// Iterations is the planned coverage (the best-effort maximum when
	// infeasible).
	Iterations float64

	// EnergyJ, CarbonG, and CostUSD total the plan.
	EnergyJ float64
	CarbonG float64
	CostUSD float64
}

// Total reads the evaluation total matching the objective.
func (e Evaluation) Total(obj Objective) float64 {
	switch obj {
	case ObjectiveCost:
		return e.CostUSD
	case ObjectiveEnergy:
		return e.EnergyJ
	default:
		return e.CarbonG
	}
}

// Evaluate solves the instance and returns only its totals, reusing the
// solver's buffers: no plan, no per-interval slices, no allocations in
// steady state. The totals are bit-identical to Optimize's on the same
// inputs — both accumulate the same per-slice terms in the same order —
// so a descent may compare candidates via Evaluate and re-solve only
// the winner with Optimize.
func (s *Solver) Evaluate(lt *frontier.LookupTable, sig *Signal, opts Options) (Evaluation, error) {
	if err := s.sol.solve(lt, sig, opts); err != nil {
		return Evaluation{}, err
	}
	sol := &s.sol
	out := Evaluation{Feasible: sol.feasible}
	for k := range sol.ivs {
		s.buf = sol.intervalSlices(k, s.buf[:0])
		var iters, energy float64
		for _, sl := range s.buf {
			iters += sl.Seconds / lt.PointTime(sl.Point)
			energy += sl.Seconds * sol.scale * lt.AvgPower(sl.Point)
		}
		pi := &sol.ivs[k]
		out.Iterations += iters
		out.EnergyJ += energy
		out.CarbonG += energy / JoulesPerKWh * pi.iv.CarbonGPerKWh
		out.CostUSD += energy / JoulesPerKWh * pi.iv.PriceUSDPerKWh
	}
	return out, nil
}

// Optimize plans via the solver's reusable buffers; see the package
// Optimize for semantics. The returned Plan is freshly allocated (it
// does not alias the solver), with all interval slices carved from one
// backing array.
func (s *Solver) Optimize(lt *frontier.LookupTable, sig *Signal, opts Options) (*Plan, error) {
	if err := s.sol.solve(lt, sig, opts); err != nil {
		return nil, err
	}
	sol := &s.sol
	scale := sol.scale

	plan := &Plan{
		Objective: sol.obj,
		Target:    opts.Target,
		DeadlineS: sol.deadline,
		Feasible:  sol.feasible,
		FinishS:   math.Inf(1),
		Intervals: make([]IntervalPlan, 0, len(sol.ivs)),
	}
	nSlices := 0
	for k := range sol.ivs {
		if sol.frac != nil && sol.frac.k == k {
			nSlices += 2
		} else if sol.ivs[k].cur >= 0 {
			nSlices++
		}
	}
	slices := make([]Slice, 0, nSlices)
	remaining := opts.Target
	for k := range sol.ivs {
		pi := &sol.ivs[k]
		ip := IntervalPlan{
			Index:          k,
			StartS:         pi.iv.StartS,
			EndS:           pi.iv.StartS + pi.dur,
			CarbonGPerKWh:  pi.iv.CarbonGPerKWh,
			PriceUSDPerKWh: pi.iv.PriceUSDPerKWh,
		}
		base := len(slices)
		slices = sol.intervalSlices(k, slices)
		if len(slices) > base {
			ip.Slices = slices[base:len(slices):len(slices)]
		}
		var run float64
		for _, sl := range ip.Slices {
			run += sl.Seconds
			ip.Iterations += sl.Seconds / lt.PointTime(sl.Point)
			ip.EnergyJ += sl.Seconds * scale * lt.AvgPower(sl.Point)
		}
		ip.IdleS = pi.dur - run
		ip.CarbonG = ip.EnergyJ / JoulesPerKWh * pi.iv.CarbonGPerKWh
		ip.CostUSD = ip.EnergyJ / JoulesPerKWh * pi.iv.PriceUSDPerKWh

		if math.IsInf(plan.FinishS, 1) && plan.Iterations+ip.Iterations >= opts.Target-1e-9 {
			// The target lands inside this interval; slices run
			// back-to-back from its start.
			need := remaining
			at := ip.StartS
			for _, sl := range ip.Slices {
				rate := 1 / lt.PointTime(sl.Point)
				if got := sl.Seconds * rate; got < need {
					need -= got
					at += sl.Seconds
				} else {
					at += need / rate
					break
				}
			}
			plan.FinishS = at
		}
		remaining -= ip.Iterations
		plan.Iterations += ip.Iterations
		plan.EnergyJ += ip.EnergyJ
		plan.CarbonG += ip.CarbonG
		plan.CostUSD += ip.CostUSD
		plan.Intervals = append(plan.Intervals, ip)
	}
	if math.IsInf(plan.FinishS, 1) {
		plan.FinishS = -1
	}
	return plan, nil
}

// intervalSlices appends interval k's planned runs to buf: the
// fractional interval time-shares its step's endpoints — f·dur seconds
// at the faster state, the rest at the slower one (or idle) — and any
// other awake interval runs its descent state for its whole duration.
func (sol *solution) intervalSlices(k int, buf []Slice) []Slice {
	pi := &sol.ivs[k]
	if sol.frac != nil && sol.frac.k == k {
		fs := sol.frac
		fast := fs.f * pi.dur
		buf = append(buf, Slice{Point: fs.st.to, Seconds: fast})
		if fs.st.from >= 0 {
			buf = append(buf, Slice{Point: fs.st.from, Seconds: pi.dur - fast})
		}
	} else if pi.cur >= 0 {
		buf = append(buf, Slice{Point: pi.cur, Seconds: pi.dur})
	}
	return buf
}

// solve runs the marginal-cost greedy and returns the per-interval
// states plus the single fractional step. Exposed separately so tests
// can compare the solver layer against brute force.
func solve(lt *frontier.LookupTable, sig *Signal, opts Options) (*solution, error) {
	sol := &solution{}
	if err := sol.solve(lt, sig, opts); err != nil {
		return nil, err
	}
	return sol, nil
}

// solve fills the solution in place, truncating and reusing its
// buffers from any previous run.
func (sol *solution) solve(lt *frontier.LookupTable, sig *Signal, opts Options) error {
	d, scale, obj, err := normalize(lt, sig, opts)
	if err != nil {
		return err
	}

	n := len(lt.Points)
	minPow := lt.AvgPower(n - 1) // slowest point's draw: any cap below it forces idle
	sol.ivs = sol.ivs[:0]
	sol.frac = nil
	sol.coverage, sol.cost, sol.maxCover = 0, 0, 0
	sol.deadline, sol.scale, sol.obj = d, scale, obj
	for _, iv := range sig.Intervals {
		// Inline Signal.Truncate: cut at the deadline without copying.
		if iv.StartS >= d {
			break
		}
		if iv.EndS > d {
			iv.EndS = d
		}
		pi := planInterval{iv: iv, dur: iv.Duration(), perJ: PerJoule(obj, iv), cur: -1, lo: 0}
		if iv.CapW > 0 {
			if maxW := iv.CapW / scale; maxW < minPow {
				pi.lo = -1 // skip FirstUnderPower's search: no point qualifies
			} else {
				pi.lo = lt.FirstUnderPower(maxW)
			}
			if pi.lo < 0 {
				pi.only = true // cap excludes every point: forced idle
			}
		}
		if !pi.only {
			sol.maxCover += pi.dur / lt.PointTime(pi.lo)
			if opts.NoIdle {
				pi.cur = n - 1
				sol.coverage += pi.dur / lt.PointTime(pi.cur)
				sol.cost += pi.perJ * scale * lt.AvgPower(pi.cur) * pi.dur
			}
		}
		sol.ivs = append(sol.ivs, pi)
	}
	if cap(sol.stacks) < len(sol.ivs) {
		sol.stacks = make([][]step, len(sol.ivs))
	} else {
		sol.stacks = sol.stacks[:len(sol.ivs)]
		for k := range sol.stacks {
			sol.stacks[k] = sol.stacks[k][:0]
		}
	}
	sol.feasible = sol.maxCover >= opts.Target-1e-9

	if !sol.feasible {
		// Best effort: everything at the fastest allowed point.
		for k := range sol.ivs {
			pi := &sol.ivs[k]
			if pi.only {
				continue
			}
			pi.cur = pi.lo
		}
		sol.coverage = sol.maxCover
		return nil
	}

	// Greedy fill: cheapest marginal objective cost per iteration
	// first. Each interval's available step is its next one — wake up
	// at the minimum-energy point, then one point faster at a time —
	// and per-interval slopes are non-decreasing for convex tables, so
	// the global cheapest-available order is the global slope order.
	// The final step is taken fractionally, so the fill never
	// overshoots the target.
	//
	// An interval's available step only changes when its current one is
	// taken, so the cheapest-available selection runs over a min-heap —
	// each step pushed and popped once, O(steps · log intervals) rather
	// than a full interval rescan per step — while heapItem's (slope,
	// index) ordering keeps the pick sequence, and hence every float
	// accumulation, bit-identical to the sequential scan.
	sol.heap = sol.heap[:0]
	for k := range sol.ivs {
		if st, ok := sol.nextStep(lt, n, k); ok {
			sol.heap = append(sol.heap, heapItem{slope: st.dc / st.dw, k: int32(k), st: st})
		}
	}
	sol.heapify()
	for sol.coverage < opts.Target-1e-9 {
		if len(sol.heap) == 0 {
			break // every interval saturated (NoIdle with coverage < target is impossible here)
		}
		it := sol.heap[0] // peek: the take either breaks or replaces the top in place
		best, bestStep := int(it.k), it.st
		if need := opts.Target - sol.coverage; bestStep.dw > need+1e-12 {
			// Final fractional take: time-share the step's endpoints so
			// the target is completed exactly. (Under NoIdle every
			// interval is already awake, so the shared states both run —
			// no idle time is introduced.)
			f := need / bestStep.dw
			sol.fracBuf = fracStep{k: best, st: bestStep, f: f}
			sol.frac = &sol.fracBuf
			sol.coverage += need
			sol.cost += f * bestStep.dc
			break
		}
		sol.ivs[best].cur = bestStep.to
		sol.coverage += bestStep.dw
		sol.cost += bestStep.dc
		sol.stacks[best] = append(sol.stacks[best], bestStep)
		if st, ok := sol.nextStep(lt, n, best); ok {
			sol.replaceTop(it.k, st)
		} else {
			sol.dropTop()
		}
	}
	return nil
}

// Fixed plans the signal-blind baseline: run one fixed frontier point
// continuously from trace start until the target is reached (point 0
// is the always-T_min baseline; the last point is static min-energy).
// The returned plan carries the same accounting as Optimize, so the
// two are directly comparable at equal iterations completed.
func Fixed(lt *frontier.LookupTable, point int, sig *Signal, opts Options) (*Plan, error) {
	d, scale, obj, err := normalize(lt, sig, opts)
	if err != nil {
		return nil, err
	}
	if point < 0 || point >= len(lt.Points) {
		return nil, fmt.Errorf("grid: fixed baseline point %d out of range", point)
	}
	t := lt.PointTime(point)
	finish := opts.Target * t
	plan := &Plan{
		Objective: obj,
		Target:    opts.Target,
		DeadlineS: d,
		Feasible:  finish <= d+1e-9,
		FinishS:   finish,
	}
	if !plan.Feasible {
		// Same contract as Optimize: the plan never reaches the target
		// within the deadline, and its intervals (cut at the deadline)
		// account only the iterations that actually fit.
		plan.FinishS = -1
	}
	power := scale * lt.AvgPower(point)
	for k, iv := range sig.Truncate(d).Intervals {
		run := math.Min(iv.EndS, finish) - iv.StartS
		if run < 0 {
			run = 0
		}
		ip := IntervalPlan{
			Index:          k,
			StartS:         iv.StartS,
			EndS:           math.Min(iv.EndS, d),
			CarbonGPerKWh:  iv.CarbonGPerKWh,
			PriceUSDPerKWh: iv.PriceUSDPerKWh,
		}
		if run > 0 {
			ip.Slices = []Slice{{Point: point, Seconds: run}}
			ip.Iterations = run / t
			ip.EnergyJ = run * power
			ip.CarbonG = ip.EnergyJ / JoulesPerKWh * iv.CarbonGPerKWh
			ip.CostUSD = ip.EnergyJ / JoulesPerKWh * iv.PriceUSDPerKWh
		}
		ip.IdleS = ip.EndS - ip.StartS - run
		plan.Iterations += ip.Iterations
		plan.EnergyJ += ip.EnergyJ
		plan.CarbonG += ip.CarbonG
		plan.CostUSD += ip.CostUSD
		plan.Intervals = append(plan.Intervals, ip)
	}
	return plan, nil
}
