package experiments

import (
	"fmt"

	"perseus/internal/frontier"
	"perseus/internal/grid"
	"perseus/internal/region"
)

// RegionStrategy is one row of a multi-region comparison: a named way
// of placing the same work across the same datacenters.
type RegionStrategy struct {
	Name string
	Plan *region.Plan
}

// RegionComparison plans the multi-region placement comparison for one
// job: the spatio-temporal planner against pinning the job to each
// region (fixed placement) and against picking one region without ever
// migrating — all completing the same target iterations under the same
// deadline and migration cost model.
func RegionComparison(lt *frontier.LookupTable, regions []region.Region, target, deadline float64, mig region.MigrationCost) ([]RegionStrategy, error) {
	jobs := []region.Job{{ID: "train", Table: lt, Target: target, DeadlineS: deadline}}
	opts := region.Options{Objective: grid.ObjectiveCarbon, Migration: mig}
	var out []RegionStrategy
	for i := range regions {
		p, err := region.Fixed(regions, jobs, regions[i].Name, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: fixed-%s baseline: %w", regions[i].Name, err)
		}
		out = append(out, RegionStrategy{"fixed @ " + regions[i].Name, p})
	}
	noMig, err := region.NoMigration(regions, jobs, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: no-migration baseline: %w", err)
	}
	out = append(out, RegionStrategy{"no-migration (best region)", noMig})
	plan, err := region.Optimize(regions, jobs, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: region planner: %w", err)
	}
	out = append(out, RegionStrategy{"region planner (migrating)", plan})
	return out, nil
}

// RegionComparisonTable renders the strategies side by side, with
// carbon savings relative to the first (fixed-placement) row.
func RegionComparisonTable(strategies []RegionStrategy) *Table {
	t := &Table{
		Title: "Multi-region placement (equal iterations completed)",
		Header: []string{"Strategy", "Iters", "Migrations", "Energy (kWh)",
			"Carbon (kg)", "Cost ($)", "Carbon vs fixed (%)"},
	}
	var baseCarbon float64
	for i, st := range strategies {
		p := st.Plan
		var iters float64
		migs := 0
		for _, jp := range p.Jobs {
			iters += jp.Temporal.Iterations
			migs += jp.Migrations
		}
		if i == 0 {
			baseCarbon = p.CarbonG
		}
		save := "-"
		if baseCarbon > 0 {
			save = fmt.Sprintf("%+.1f", 100*(p.CarbonG-baseCarbon)/baseCarbon)
		}
		row := []string{
			st.Name,
			fmt.Sprintf("%.0f", iters),
			fmt.Sprintf("%d", migs),
			fmt.Sprintf("%.2f", p.EnergyJ/grid.JoulesPerKWh),
			fmt.Sprintf("%.3f", p.CarbonG/1e3),
			fmt.Sprintf("%.2f", p.CostUSD),
			save,
		}
		if !p.Feasible {
			row[0] += " (infeasible)"
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"All strategies complete the same iterations; migration downtime and transfer energy are included in the planner's totals.")
	return t
}

// RegionPlanTable renders one job's spatio-temporal schedule cell by
// cell: where the job runs, each region's carbon intensity there, and
// what each span contributes.
func RegionPlanTable(regions []region.Region, p *region.Plan, jobIdx int) *Table {
	jp := p.Jobs[jobIdx]
	t := &Table{
		Title:  fmt.Sprintf("Region plan for %s (%s objective)", jp.JobID, p.Objective),
		Header: []string{"t (h)", "Placement", "gCO2/kWh", "Run (min)", "Iters", "Carbon (g)"},
	}
	// Interval outcomes by cell, via the temporal plan's index order
	// (compile may split cells around migration downtime, so aggregate).
	type cellSum struct{ run, iters, carbon float64 }
	sums := make([]cellSum, len(p.Cells))
	ci := 0
	for _, ip := range jp.Temporal.Intervals {
		for ci < len(p.Cells)-1 && ip.StartS >= p.Cells[ci].EndS {
			ci++
		}
		s := &sums[ci]
		s.run += (ip.EndS - ip.StartS) - ip.IdleS
		s.iters += ip.Iterations
		s.carbon += ip.CarbonG
	}
	for k, a := range jp.Assignments {
		place := "paused"
		rate := "-"
		if a.Region >= 0 {
			place = p.Regions[a.Region]
			if iv, ok := regions[a.Region].Signal.AtCyclic(a.StartS); ok {
				rate = fmt.Sprintf("%.0f", iv.CarbonGPerKWh)
			}
		}
		if a.Migrate {
			place = "→ " + place + " (migrate)"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f-%.0f", a.StartS/3600, a.EndS/3600),
			place,
			rate,
			fmt.Sprintf("%.0f", sums[k].run/60),
			fmt.Sprintf("%.0f", sums[k].iters),
			fmt.Sprintf("%.0f", sums[k].carbon),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%d migration(s): %.0f s downtime, %.2f kWh transfer energy (%.0f g CO2)",
		jp.Migrations, jp.MigrationDowntimeS,
		jp.MigrationEnergyJ/grid.JoulesPerKWh, jp.MigrationCarbonG))
	return t
}
