package grid

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestValidate(t *testing.T) {
	good := Diurnal24h()
	if err := good.Validate(); err != nil {
		t.Fatalf("bundled trace invalid: %v", err)
	}
	cases := []struct {
		name string
		sig  Signal
	}{
		{"empty", Signal{}},
		{"nonzero start", Signal{Intervals: []Interval{{StartS: 1, EndS: 2}}}},
		{"gap", Signal{Intervals: []Interval{
			{StartS: 0, EndS: 1}, {StartS: 2, EndS: 3},
		}}},
		{"zero duration", Signal{Intervals: []Interval{{StartS: 0, EndS: 0}}}},
		{"negative carbon", Signal{Intervals: []Interval{{StartS: 0, EndS: 1, CarbonGPerKWh: -1}}}},
		{"nan price", Signal{Intervals: []Interval{{StartS: 0, EndS: 1, PriceUSDPerKWh: math.NaN()}}}},
		{"inf cap", Signal{Intervals: []Interval{{StartS: 0, EndS: 1, CapW: math.Inf(1)}}}},
	}
	for _, tc := range cases {
		if err := tc.sig.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestMeanCarbonGPerKWh(t *testing.T) {
	var nilSig *Signal
	if got := nilSig.MeanCarbonGPerKWh(); got != 0 {
		t.Fatalf("nil signal mean = %v, want 0", got)
	}
	if got := (&Signal{}).MeanCarbonGPerKWh(); got != 0 {
		t.Fatalf("empty signal mean = %v, want 0", got)
	}
	// Duration-weighted: 1h at 500 + 3h at 100 → (500+300)/4 = 200.
	sig := &Signal{Intervals: []Interval{
		{StartS: 0, EndS: 3600, CarbonGPerKWh: 500},
		{StartS: 3600, EndS: 4 * 3600, CarbonGPerKWh: 100},
	}}
	if got := sig.MeanCarbonGPerKWh(); math.Abs(got-200) > 1e-12 {
		t.Fatalf("weighted mean = %v, want 200", got)
	}
}

func TestAtAndCyclic(t *testing.T) {
	sig := Diurnal24h()
	if h := sig.Horizon(); h != 86400 {
		t.Fatalf("horizon %v, want 86400", h)
	}
	iv, ok := sig.At(12*3600 + 30)
	if !ok || iv.CarbonGPerKWh != 232 {
		t.Fatalf("At(noon) = %+v, %v; want hour-12 interval (232 g/kWh)", iv, ok)
	}
	if _, ok := sig.At(-1); ok {
		t.Fatal("At(-1) should miss")
	}
	if _, ok := sig.At(86400); ok {
		t.Fatal("At(horizon) should miss (half-open)")
	}
	// The next day's noon cycles back to the same interval.
	civ, ok := sig.AtCyclic(86400 + 12*3600)
	if !ok || civ.CarbonGPerKWh != 232 {
		t.Fatalf("AtCyclic(day2 noon) = %+v, %v", civ, ok)
	}
	if _, ok := sig.AtCyclic(-5); ok {
		t.Fatal("AtCyclic(-5) should miss")
	}
}

func TestTruncateAndBoundaries(t *testing.T) {
	sig := Diurnal24h()
	cut := sig.Truncate(90 * 60) // 1.5 h
	if len(cut.Intervals) != 2 {
		t.Fatalf("truncated to %d intervals, want 2", len(cut.Intervals))
	}
	if cut.Intervals[1].EndS != 5400 {
		t.Fatalf("straddling interval ends at %v, want 5400", cut.Intervals[1].EndS)
	}
	if err := cut.Validate(); err != nil {
		t.Fatalf("truncated signal invalid: %v", err)
	}

	b := sig.Boundaries(2 * 3600)
	if len(b) != 1 || b[0] != 3600 {
		t.Fatalf("boundaries up to 2h: %v, want [3600]", b)
	}
	// Cyclic: a 25h window revisits hour 0 of day 2.
	b = sig.Boundaries(25 * 3600)
	if len(b) != 24 || b[23] != 86400 {
		t.Fatalf("boundaries up to 25h: %d entries, last %v; want 24 ending 86400", len(b), b[len(b)-1])
	}
}

func TestAccrue(t *testing.T) {
	sig := &Signal{Intervals: []Interval{
		{StartS: 0, EndS: 100, CarbonGPerKWh: 360, PriceUSDPerKWh: 0.36},
		{StartS: 100, EndS: 200, CarbonGPerKWh: 720, PriceUSDPerKWh: 0.72},
	}}
	// 1 kW for 50 s in each interval: energy 100 kJ; carbon
	// (50e3/3.6e6)*360 + (50e3/3.6e6)*720 = 5 + 10 = 15 g.
	e, c, usd := Accrue(sig, 50, 150, 1000)
	if math.Abs(e-100e3) > 1e-6 {
		t.Fatalf("energy %v, want 100e3", e)
	}
	if math.Abs(c-15) > 1e-9 {
		t.Fatalf("carbon %v, want 15", c)
	}
	if math.Abs(usd-0.015) > 1e-12 {
		t.Fatalf("cost %v, want 0.015", usd)
	}
	// Cyclic wrap: [150, 250) covers interval 1 then interval 0 again.
	_, c, _ = Accrue(sig, 150, 250, 1000)
	want := 50e3/JoulesPerKWh*720 + 50e3/JoulesPerKWh*360
	if math.Abs(c-want) > 1e-9 {
		t.Fatalf("cyclic carbon %v, want %v", c, want)
	}
	// Pre-trace time accrues energy but no carbon.
	e, c, _ = Accrue(sig, -100, 0, 1000)
	if e != 100e3 || c != 0 {
		t.Fatalf("pre-trace accrual: energy %v carbon %v, want 100e3 and 0", e, c)
	}
	// No signal: energy only.
	e, c, usd = Accrue(nil, 0, 10, 500)
	if e != 5000 || c != 0 || usd != 0 {
		t.Fatalf("nil-signal accrual: %v %v %v", e, c, usd)
	}
	if e, _, _ := Accrue(sig, 10, 10, 1000); e != 0 {
		t.Fatalf("empty span accrued %v", e)
	}
}

func TestParseJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	orig := Diurnal24h()
	if err := json.NewEncoder(&buf).Encode(orig); err != nil {
		t.Fatal(err)
	}
	got, err := ParseJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != orig.Name || len(got.Intervals) != len(orig.Intervals) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if _, err := ParseJSON(strings.NewReader(`{"intervals":[]}`)); err == nil {
		t.Fatal("empty signal should fail validation")
	}
	if _, err := ParseJSON(strings.NewReader(`{nope`)); err == nil {
		t.Fatal("malformed JSON should fail")
	}
}

func TestParseCSV(t *testing.T) {
	csv := `start_s,end_s,carbon_g_per_kwh,price_usd_per_kwh,cap_w
0,3600,420,0.08,0
3600,7200,250,0.05,5000
`
	sig, err := ParseCSV(strings.NewReader(csv))
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.Intervals) != 2 || sig.Intervals[1].CapW != 5000 || sig.Intervals[0].CarbonGPerKWh != 420 {
		t.Fatalf("parsed %+v", sig.Intervals)
	}
	// The cap column is optional.
	sig, err = ParseCSV(strings.NewReader("start_s,end_s,carbon_g_per_kwh,price_usd_per_kwh\n0,60,100,0.1\n"))
	if err != nil || sig.Intervals[0].CapW != 0 {
		t.Fatalf("capless CSV: %v %+v", err, sig)
	}
	for name, bad := range map[string]string{
		"missing column": "start_s,end_s,carbon_g_per_kwh\n0,60,100\n",
		"bad number":     "start_s,end_s,carbon_g_per_kwh,price_usd_per_kwh\n0,60,oops,0.1\n",
		"gap":            "start_s,end_s,carbon_g_per_kwh,price_usd_per_kwh\n0,60,100,0.1\n120,180,100,0.1\n",
	} {
		if _, err := ParseCSV(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestGenerate(t *testing.T) {
	sig := Generate(GenOptions{Name: "sweep", Seed: 7, Jitter: 0.1, CapW: 9000})
	if err := sig.Validate(); err != nil {
		t.Fatalf("generated signal invalid: %v", err)
	}
	if len(sig.Intervals) != 24 || sig.Horizon() != 86400 {
		t.Fatalf("default shape: %d intervals, horizon %v", len(sig.Intervals), sig.Horizon())
	}
	var min, max float64 = math.Inf(1), 0
	for _, iv := range sig.Intervals {
		if iv.CapW != 9000 {
			t.Fatalf("cap not applied: %+v", iv)
		}
		min = math.Min(min, iv.CarbonGPerKWh)
		max = math.Max(max, iv.CarbonGPerKWh)
	}
	if max-min < 100 {
		t.Fatalf("no diurnal swing: carbon spans [%v, %v]", min, max)
	}
	// Determinism: the same seed reproduces the trace.
	again := Generate(GenOptions{Name: "sweep", Seed: 7, Jitter: 0.1, CapW: 9000})
	for i := range sig.Intervals {
		if sig.Intervals[i] != again.Intervals[i] {
			t.Fatalf("interval %d differs across identical seeds", i)
		}
	}
	other := Generate(GenOptions{Seed: 8, Jitter: 0.1})
	same := true
	for i := range sig.Intervals {
		if sig.Intervals[i].CarbonGPerKWh != other.Intervals[i].CarbonGPerKWh {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

// TestParseRejectsInvalidRates pins the parse-layer hardening: NaN,
// Inf, and negative carbon-intensity or price entries are rejected at
// ParseCSV/ParseJSON instead of poisoning Optimize and Accrue
// downstream (the same contract POST /grid/signal enforces over HTTP,
// tested in internal/server).
func TestParseRejectsInvalidRates(t *testing.T) {
	csvCases := map[string]string{
		"NaN carbon": "start_s,end_s,carbon_g_per_kwh,price_usd_per_kwh\n0,3600,NaN,0.1\n",
		"Inf carbon": "start_s,end_s,carbon_g_per_kwh,price_usd_per_kwh\n0,3600,Inf,0.1\n",
		"neg carbon": "start_s,end_s,carbon_g_per_kwh,price_usd_per_kwh\n0,3600,-5,0.1\n",
		"NaN price":  "start_s,end_s,carbon_g_per_kwh,price_usd_per_kwh\n0,3600,400,NaN\n",
		"neg price":  "start_s,end_s,carbon_g_per_kwh,price_usd_per_kwh\n0,3600,400,-0.1\n",
		"neg cap":    "start_s,end_s,carbon_g_per_kwh,price_usd_per_kwh,cap_w\n0,3600,400,0.1,-100\n",
		"Inf cap":    "start_s,end_s,carbon_g_per_kwh,price_usd_per_kwh,cap_w\n0,3600,400,0.1,+Inf\n",
	}
	for name, body := range csvCases {
		if _, err := ParseCSV(strings.NewReader(body)); err == nil {
			t.Errorf("ParseCSV accepted %s", name)
		}
	}
	jsonCases := map[string]string{
		"neg carbon": `{"intervals":[{"start_s":0,"end_s":3600,"carbon_g_per_kwh":-5,"price_usd_per_kwh":0.1}]}`,
		"neg price":  `{"intervals":[{"start_s":0,"end_s":3600,"carbon_g_per_kwh":400,"price_usd_per_kwh":-0.1}]}`,
		"neg cap":    `{"intervals":[{"start_s":0,"end_s":3600,"carbon_g_per_kwh":400,"price_usd_per_kwh":0.1,"cap_w":-1}]}`,
		// JSON cannot carry NaN/Inf literals: the decoder itself must
		// reject them rather than zeroing the field.
		"NaN carbon": `{"intervals":[{"start_s":0,"end_s":3600,"carbon_g_per_kwh":NaN,"price_usd_per_kwh":0.1}]}`,
	}
	for name, body := range jsonCases {
		if _, err := ParseJSON(strings.NewReader(body)); err == nil {
			t.Errorf("ParseJSON accepted %s", name)
		}
	}
	// A valid trace still parses after all that.
	if _, err := ParseCSV(strings.NewReader(
		"start_s,end_s,carbon_g_per_kwh,price_usd_per_kwh\n0,3600,400,0.1\n")); err != nil {
		t.Fatalf("valid CSV rejected: %v", err)
	}
}
