package experiments

import (
	"fmt"

	"perseus/internal/forecast"
	"perseus/internal/frontier"
	"perseus/internal/grid"
	"perseus/internal/region"
)

// ForecastStrategy is one row of a forecast comparison: a named way of
// scheduling the same work when the future is only predicted.
type ForecastStrategy struct {
	Name    string
	Outcome *forecast.Outcome
}

// ForecastScenario bundles the seeded noisy-revision setup a
// comparison replays: the truth trace, the revision stream, and the
// planning problem.
type ForecastScenario struct {
	// Truth is the actual trace (realized accrual always uses it).
	Truth *grid.Signal

	// Seed selects the revision stream; Sigma is the per-step relative
	// innovation (0 = the provider default).
	Seed  int64
	Sigma float64

	// Target and DeadlineS define the planning problem (deadline 0 =
	// the truth horizon).
	Target    float64
	DeadlineS float64
}

// ForecastComparison replays the bundled forecast-uncertainty
// comparison on one scenario: the perfect-foresight oracle,
// plan-once-on-the-first-forecast, rolling-horizon MPC re-planning,
// robust MPC against the pessimistic 0.9-quantile band, and MPC driven
// by the seasonal-naive model forecasting from revealed history alone.
// All strategies complete the same iterations; only realized carbon,
// cost, and energy differ.
func ForecastComparison(lt *frontier.LookupTable, sc ForecastScenario) ([]ForecastStrategy, error) {
	opts := forecast.Options{Target: sc.Target, DeadlineS: sc.DeadlineS}
	prov := &forecast.Revisions{Truth: sc.Truth, Seed: sc.Seed, Sigma: sc.Sigma, HorizonS: sc.DeadlineS}

	oracle, err := forecast.Oracle(lt, sc.Truth, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: oracle: %w", err)
	}
	once, err := forecast.PlanOnce(lt, prov, sc.Truth, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: plan-once: %w", err)
	}
	mpc, err := forecast.Replan(lt, prov, sc.Truth, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: mpc: %w", err)
	}
	robustOpts := opts
	robustOpts.Quantile = 0.9
	robust, err := forecast.Replan(lt, prov, sc.Truth, robustOpts)
	if err != nil {
		return nil, fmt.Errorf("experiments: robust mpc: %w", err)
	}
	seasonal, err := forecast.Replan(lt, &forecast.FromHistory{
		Truth: sc.Truth, Model: &forecast.SeasonalNaive{}, HorizonS: sc.DeadlineS,
	}, sc.Truth, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: seasonal mpc: %w", err)
	}
	return []ForecastStrategy{
		{"oracle (perfect foresight)", oracle},
		{"plan-once (first forecast)", once},
		{"MPC re-planning", mpc},
		{"MPC robust (q=0.90)", robust},
		{"MPC seasonal-naive model", seasonal},
	}, nil
}

// ForecastComparisonTable renders the strategies side by side with
// regret — extra carbon over the perfect-foresight oracle (the first
// strategy) — and the gain over plan-once (the second).
func ForecastComparisonTable(sc ForecastScenario, strategies []ForecastStrategy) *Table {
	t := &Table{
		Title: fmt.Sprintf("Forecast-driven scheduling on %s (seed %d, equal iterations completed)",
			sc.Truth.Name, sc.Seed),
		Header: []string{"Strategy", "Plans", "Energy (kWh)", "Carbon (kg)",
			"Cost ($)", "Regret vs oracle (%)", "vs plan-once (%)"},
	}
	var oracleCarbon, onceCarbon float64
	for i, st := range strategies {
		o := st.Outcome
		if i == 0 {
			oracleCarbon = o.CarbonG
		}
		if i == 1 {
			onceCarbon = o.CarbonG
		}
		regret, vsOnce := "-", "-"
		if i > 0 && oracleCarbon > 0 {
			regret = fmt.Sprintf("%+.1f", 100*(o.CarbonG-oracleCarbon)/oracleCarbon)
		}
		if i > 1 && onceCarbon > 0 {
			vsOnce = fmt.Sprintf("%+.1f", 100*(o.CarbonG-onceCarbon)/onceCarbon)
		}
		row := []string{
			st.Name,
			fmt.Sprintf("%d", o.Plans),
			fmt.Sprintf("%.2f", o.EnergyJ/grid.JoulesPerKWh),
			fmt.Sprintf("%.3f", o.CarbonG/1e3),
			fmt.Sprintf("%.2f", o.CostUSD),
			regret,
			vsOnce,
		}
		if !o.Feasible {
			row[0] += " (infeasible)"
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"Realized totals accrue against the truth trace; planners only ever see the forecast.",
		"Regret is extra carbon over perfect foresight; negative vs plan-once means re-planning won.")
	return t
}

// ForecastDriftTable renders one outcome's executed schedule interval
// by interval: what the forecast in force predicted and what the grid
// really did.
func ForecastDriftTable(out *forecast.Outcome) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Predicted vs realized accrual (%s)", out.Strategy),
		Header: []string{"t (h)", "Run (min)", "Iters", "Pred carbon (g)", "Real carbon (g)", "Drift (g)"},
	}
	for _, ei := range out.Intervals {
		var run float64
		for _, sl := range ei.Slices {
			run += sl.Seconds
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f-%.0f", ei.StartS/3600, ei.EndS/3600),
			fmt.Sprintf("%.0f", run/60),
			fmt.Sprintf("%.0f", ei.Iterations),
			fmt.Sprintf("%.0f", ei.PredCarbonG),
			fmt.Sprintf("%.0f", ei.CarbonG),
			fmt.Sprintf("%+.0f", ei.CarbonG-ei.PredCarbonG),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"totals: predicted %.0f g, realized %.0f g, drift %+.0f g over %d plans",
		out.PredCarbonG, out.CarbonG, out.CarbonG-out.PredCarbonG, out.Plans))
	return t
}

// RegionForecastStrategy is one row of a multi-region forecast
// comparison.
type RegionForecastStrategy struct {
	Name    string
	Outcome *forecast.RegionOutcome
}

// RegionForecastComparison replays the multi-region analogue on a
// fleet of regions: the perfect-foresight joint plan, plan-once on the
// first forecasts, rolling-horizon re-planning with migrations charged
// from each job's current region, and the damped controller — the
// hysteresis margin (re-plans see migration cost × 0.5, counteracting
// rolling-horizon hesitation) combined with the robust 0.7-quantile,
// the per-seed-parity rule region_mpc_test.go pins.
func RegionForecastComparison(lt *frontier.LookupTable, regions []region.Region, target float64, mig region.MigrationCost, seed int64, sigma float64) ([]RegionForecastStrategy, error) {
	jobs := []region.Job{{ID: "train", Table: lt, Target: target}}
	opts := forecast.RegionOptions{Objective: grid.ObjectiveCarbon, Migration: mig}
	oracle, err := forecast.OracleRegions(regions, jobs, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: region oracle: %w", err)
	}
	regs := make([]forecast.ForecastRegion, len(regions))
	for i, r := range regions {
		regs[i] = forecast.ForecastRegion{Region: r, Provider: &forecast.Revisions{
			Truth: r.Signal, Seed: seed + int64(i)*100, Sigma: sigma,
		}}
	}
	once, err := forecast.PlanOnceRegions(regs, jobs, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: region plan-once: %w", err)
	}
	mpc, err := forecast.ReplanRegions(regs, jobs, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: region mpc: %w", err)
	}
	dampedOpts := opts
	dampedOpts.HysteresisMargin = 0.5
	dampedOpts.PlanQuantile = 0.7
	damped, err := forecast.ReplanRegions(regs, jobs, dampedOpts)
	if err != nil {
		return nil, fmt.Errorf("experiments: region damped mpc: %w", err)
	}
	return []RegionForecastStrategy{
		{"oracle (perfect foresight)", oracle},
		{"plan-once (first forecasts)", once},
		{"MPC re-planning (migrating)", mpc},
		{"MPC hysteresis (margin 0.5, q=0.70)", damped},
	}, nil
}

// RegionForecastComparisonTable renders the multi-region strategies
// side by side.
func RegionForecastComparisonTable(strategies []RegionForecastStrategy) *Table {
	t := &Table{
		Title: "Multi-region forecast-driven scheduling (equal iterations completed)",
		Header: []string{"Strategy", "Plans", "Migrations", "Energy (kWh)",
			"Carbon (kg)", "Regret vs oracle (%)"},
	}
	var oracleCarbon float64
	for i, st := range strategies {
		o := st.Outcome
		if i == 0 {
			oracleCarbon = o.CarbonG
		}
		regret := "-"
		if i > 0 && oracleCarbon > 0 {
			regret = fmt.Sprintf("%+.1f", 100*(o.CarbonG-oracleCarbon)/oracleCarbon)
		}
		migs := 0
		for _, j := range o.Jobs {
			migs += j.Migrations
		}
		row := []string{
			st.Name,
			fmt.Sprintf("%d", o.Plans),
			fmt.Sprintf("%d", migs),
			fmt.Sprintf("%.2f", o.EnergyJ/grid.JoulesPerKWh),
			fmt.Sprintf("%.3f", o.CarbonG/1e3),
			regret,
		}
		if !o.Feasible {
			row[0] += " (infeasible)"
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"Each job's re-plan charges moving away from its current region as a migration (downtime + transfer energy).")
	return t
}
