// Package client implements the Perseus client (paper §5, Table 2): the
// framework-integrated, accelerator-specific side that profiles forward
// and backward computations in vivo during the first training iterations,
// reports results to the Perseus server, and realizes deployed energy
// schedules through an asynchronous frequency controller.
//
// The Trainer type stands in for the Merak pipeline execution engine of
// paper Listing 1: it walks a pipeline schedule's instructions, wrapping
// each with controller.SetSpeed and profiler Begin/End exactly as a real
// training engine would.
package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"perseus/internal/forecast"
	"perseus/internal/gpu"
	"perseus/internal/grid"
	"perseus/internal/obs"
	"perseus/internal/profile"
	"perseus/internal/region"
	"perseus/internal/sched"
)

// Profiler measures the time and energy of computations on one device
// (Table 2: profiler.begin/end). Begin snapshots the device energy
// counter; End records the measurement.
type Profiler struct {
	dev    *gpu.Device
	open   bool
	snapJ  float64
	simSec float64 // simulated elapsed seconds for the open span

	// Records accumulates raw measurements for upload.
	Records []profile.Measurement
}

// NewProfiler wraps a device.
func NewProfiler(dev *gpu.Device) *Profiler { return &Profiler{dev: dev} }

// Begin starts measuring one computation.
func (p *Profiler) Begin() error {
	if p.open {
		return fmt.Errorf("client: profiler Begin while a span is open")
	}
	p.open = true
	p.snapJ = p.dev.EnergyCounter()
	p.simSec = 0
	return nil
}

// Advance accounts simulated execution time inside the open span (the
// simulator's replacement for wall-clock time).
func (p *Profiler) Advance(sec float64) { p.simSec += sec }

// End records the measurement for the computation type.
func (p *Profiler) End(virtual int, kind sched.Kind) error {
	if !p.open {
		return fmt.Errorf("client: profiler End without Begin")
	}
	p.open = false
	p.Records = append(p.Records, profile.Measurement{
		Virtual: virtual,
		Kind:    kind,
		Freq:    p.dev.Frequency(),
		Time:    p.simSec,
		Energy:  p.dev.EnergyCounter() - p.snapJ,
	})
	return nil
}

// Controller is the asynchronous frequency controller (paper §5): a
// separate goroutine applies frequency changes so the training loop never
// blocks on the ~10 ms NVML call. SetSpeed enqueues; the worker applies.
type Controller struct {
	dev  *gpu.Device
	reqs chan ctlReq
	stop chan struct{}
	done chan struct{}
}

type ctlReq struct {
	freq gpu.Frequency
	ack  chan struct{} // non-nil: flush marker, closed once reached
}

// NewController starts the controller's worker goroutine.
func NewController(dev *gpu.Device) *Controller {
	c := &Controller{
		dev:  dev,
		reqs: make(chan ctlReq, 64),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go c.run()
	return c
}

func (c *Controller) run() {
	defer close(c.done)
	for {
		select {
		case r := <-c.reqs:
			if r.freq > 0 {
				c.dev.SetFrequency(r.freq)
			}
			if r.ack != nil {
				close(r.ack)
			}
		case <-c.stop:
			return
		}
	}
}

// SetSpeed asynchronously sets the device's frequency (Table 2:
// controller.set_speed). Frequency 0 is a no-op (constant-time ops).
func (c *Controller) SetSpeed(f gpu.Frequency) {
	select {
	case c.reqs <- ctlReq{freq: f}:
	case <-c.stop:
	}
}

// Sync waits until every previously queued frequency change has been
// applied, by enqueueing a flush marker and waiting for the worker to
// reach it (FIFO ordering guarantees all earlier requests applied). The
// simulator calls it before running a computation, standing in for the
// real system's overlap of the NVML call with CPU-side work.
func (c *Controller) Sync() {
	ack := make(chan struct{})
	select {
	case c.reqs <- ctlReq{ack: ack}:
	case <-c.stop:
		return
	}
	select {
	case <-ack:
	case <-c.done:
	}
}

// Close stops the worker.
func (c *Controller) Close() {
	close(c.stop)
	<-c.done
}

// ServerClient is the HTTP client to the Perseus server.
type ServerClient struct {
	BaseURL string
	HTTP    *http.Client

	// Traceparent, when non-empty, is attached as the W3C traceparent
	// header on every request, so the server's spans for all of this
	// client's calls share one trace ID (obs.NewTraceparent mints one).
	// When empty no header is sent and each request roots its own
	// server-side trace.
	Traceparent string
}

// NewServerClient targets a server at baseURL.
func NewServerClient(baseURL string) *ServerClient {
	return &ServerClient{BaseURL: baseURL, HTTP: http.DefaultClient}
}

// NewTracedServerClient targets a server at baseURL with a freshly
// minted traceparent, correlating every call the client makes under
// one trace ID (retrievable from TraceID).
func NewTracedServerClient(baseURL string) *ServerClient {
	return &ServerClient{BaseURL: baseURL, HTTP: http.DefaultClient, Traceparent: obs.NewTraceparent()}
}

// TraceID returns the trace ID of the client's traceparent ("" when
// the client is untraced) — the handle to look the client's requests
// up in GET /debug/traces.
func (c *ServerClient) TraceID() string {
	id, _, ok := obs.ParseTraceparent(c.Traceparent)
	if !ok {
		return ""
	}
	return id
}

// newRequest builds a request against the server, attaching the
// client's traceparent when one is set.
func (c *ServerClient) newRequest(method, path string, body *bytes.Reader) (*http.Request, error) {
	var r io.Reader
	if body != nil {
		r = body
	}
	req, err := http.NewRequest(method, c.BaseURL+path, r)
	if err != nil {
		return nil, err
	}
	if c.Traceparent != "" {
		req.Header.Set("Traceparent", c.Traceparent)
	}
	return req, nil
}

func (c *ServerClient) post(path string, body, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := c.newRequest(http.MethodPost, path, bytes.NewReader(buf))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var msg bytes.Buffer
		_, _ = msg.ReadFrom(resp.Body)
		return fmt.Errorf("client: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg.Bytes()))
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

func (c *ServerClient) get(path string, out any) error {
	req, err := c.newRequest(http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("client: GET %s: %s", path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *ServerClient) del(path string) error {
	req, err := c.newRequest(http.MethodDelete, path, nil)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var msg bytes.Buffer
		_, _ = msg.ReadFrom(resp.Body)
		return fmt.Errorf("client: DELETE %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg.Bytes()))
	}
	return nil
}

// RegisterJob registers the training job with the server.
func (c *ServerClient) RegisterJob(req JobRequest) (string, error) {
	var resp struct {
		JobID string `json:"job_id"`
	}
	if err := c.post("/jobs", req, &resp); err != nil {
		return "", err
	}
	return resp.JobID, nil
}

// JobRequest mirrors the server's registration payload.
type JobRequest struct {
	Schedule     string  `json:"schedule"`
	Stages       int     `json:"stages"`
	Microbatches int     `json:"microbatches"`
	Chunks       int     `json:"chunks,omitempty"`
	GPU          string  `json:"gpu"`
	Unit         float64 `json:"unit,omitempty"`
	DataParallel int     `json:"data_parallel,omitempty"`
	Weight       float64 `json:"weight,omitempty"`
}

// UploadProfile sends profiling results.
func (c *ServerClient) UploadProfile(jobID string, pBlocking float64, ms []profile.Measurement) error {
	type measurementJSON struct {
		Virtual int     `json:"virtual"`
		Kind    string  `json:"kind"`
		Freq    int     `json:"freq_mhz"`
		Time    float64 `json:"time_s"`
		Energy  float64 `json:"energy_j"`
	}
	payload := struct {
		PBlocking    float64           `json:"p_blocking_w"`
		Measurements []measurementJSON `json:"measurements"`
	}{PBlocking: pBlocking}
	for _, m := range ms {
		kind := "forward"
		if m.Kind == sched.Backward {
			kind = "backward"
		}
		payload.Measurements = append(payload.Measurements, measurementJSON{
			Virtual: m.Virtual, Kind: kind, Freq: int(m.Freq), Time: m.Time, Energy: m.Energy,
		})
	}
	return c.post("/jobs/"+jobID+"/profile", payload, nil)
}

// Schedule is the deployed energy schedule.
type Schedule struct {
	Ready   bool    `json:"ready"`
	Time    float64 `json:"time_s"`
	Tmin    float64 `json:"tmin_s"`
	TStar   float64 `json:"tstar_s"`
	Freqs   []int   `json:"freqs_mhz"`
	Version int     `json:"version"`
}

// FetchSchedule returns the currently deployed schedule.
func (c *ServerClient) FetchSchedule(jobID string) (Schedule, error) {
	var s Schedule
	err := c.get("/jobs/"+jobID+"/schedule", &s)
	return s, err
}

// WaitSchedule polls until the schedule is ready or attempts run out.
func (c *ServerClient) WaitSchedule(jobID string, attempts int, interval time.Duration) (Schedule, error) {
	for i := 0; i < attempts; i++ {
		s, err := c.FetchSchedule(jobID)
		if err != nil {
			return Schedule{}, err
		}
		if s.Ready {
			return s, nil
		}
		time.Sleep(interval)
	}
	return Schedule{}, fmt.Errorf("client: schedule for %s not ready after %d attempts", jobID, attempts)
}

// SetStraggler notifies the server of an anticipated straggler (Table 2:
// server.set_straggler, invoked by the training infrastructure).
func (c *ServerClient) SetStraggler(jobID, accelID string, delay, degree float64) error {
	payload := struct {
		ID     string  `json:"id"`
		Delay  float64 `json:"delay_s"`
		Degree float64 `json:"degree"`
	}{accelID, delay, degree}
	return c.post("/jobs/"+jobID+"/straggler", payload, nil)
}

// JobAllocation mirrors the server's per-job fleet allocation.
type JobAllocation struct {
	JobID     string  `json:"job_id"`
	Ready     bool    `json:"ready"`
	Time      float64 `json:"time_s"`
	PowerW    float64 `json:"power_w"`
	FloorTime float64 `json:"floor_s"`
	Loss      float64 `json:"loss"`
}

// FleetStatus mirrors the server's fleet-wide allocation view.
type FleetStatus struct {
	CapW     float64         `json:"cap_w"`
	PowerW   float64         `json:"power_w"`
	Loss     float64         `json:"loss"`
	Feasible bool            `json:"feasible"`
	Jobs     []JobAllocation `json:"jobs"`
}

// SetFleetCap sets the facility power cap across every job the server
// manages (0 uncaps) and returns the resulting allocation.
func (c *ServerClient) SetFleetCap(capW float64) (FleetStatus, error) {
	payload := struct {
		CapW float64 `json:"cap_w"`
	}{capW}
	var st FleetStatus
	err := c.post("/fleet/cap", payload, &st)
	return st, err
}

// FetchFleetStatus returns the fleet-wide allocation under the current
// cap.
func (c *ServerClient) FetchFleetStatus() (FleetStatus, error) {
	var st FleetStatus
	err := c.get("/fleet/status", &st)
	return st, err
}

// FetchAllocation returns one job's fleet allocation.
func (c *ServerClient) FetchAllocation(jobID string) (JobAllocation, error) {
	var ja JobAllocation
	err := c.get("/jobs/"+jobID+"/allocation", &ja)
	return ja, err
}

// GridSignalAck mirrors the server's signal-installation summary.
type GridSignalAck struct {
	Name      string  `json:"name"`
	Intervals int     `json:"intervals"`
	HorizonS  float64 `json:"horizon_s"`
	Objective string  `json:"objective"`
}

// UploadGridSignal installs a grid trace (carbon intensity, price, and
// facility caps over time) on the server, with an optional default
// planning objective ("" keeps carbon).
func (c *ServerClient) UploadGridSignal(sig grid.Signal, objective string) (GridSignalAck, error) {
	payload := struct {
		Signal    grid.Signal `json:"signal"`
		Objective string      `json:"objective,omitempty"`
	}{sig, objective}
	var ack GridSignalAck
	err := c.post("/grid/signal", payload, &ack)
	return ack, err
}

// FetchGridSignal returns the installed grid trace.
func (c *ServerClient) FetchGridSignal() (grid.Signal, error) {
	var sig grid.Signal
	err := c.get("/grid/signal", &sig)
	return sig, err
}

// FetchGridPlan returns the job's temporal schedule over the installed
// signal: complete iterations by the deadline (seconds in signal time,
// 0 = signal horizon) minimizing the objective ("" = server default).
func (c *ServerClient) FetchGridPlan(jobID string, iterations, deadline float64, objective string) (grid.Plan, error) {
	q := url.Values{}
	// Query-encode the floats: fmt's %v renders 1e12 as "1e+12", whose
	// bare '+' would decode server-side as a space.
	q.Set("iterations", strconv.FormatFloat(iterations, 'g', -1, 64))
	q.Set("deadline", strconv.FormatFloat(deadline, 'g', -1, 64))
	if objective != "" {
		q.Set("objective", objective)
	}
	var plan grid.Plan
	err := c.get("/grid/plan/"+jobID+"?"+q.Encode(), &plan)
	return plan, err
}

// FetchGridPlanIfChanged fetches the job's temporal schedule only if
// the plan the request resolves to changed since the fetch that
// returned haveETag, long-polling up to wait. The plan's entity tag
// names its cache key (plan epoch, frontier hash, request params), so
// it moves exactly when a signal re-install, forecast revision, or
// re-characterization would change the answer. changed is false (with
// a zero Plan) on 304 Not Modified; etag is always the server's
// current validator, to carry into the next call. Pass haveETag ""
// for an unconditional first fetch.
func (c *ServerClient) FetchGridPlanIfChanged(jobID string, iterations, deadline float64, objective, haveETag string, wait time.Duration) (p grid.Plan, etag string, changed bool, err error) {
	q := url.Values{}
	q.Set("iterations", strconv.FormatFloat(iterations, 'g', -1, 64))
	q.Set("deadline", strconv.FormatFloat(deadline, 'g', -1, 64))
	if objective != "" {
		q.Set("objective", objective)
	}
	if wait > 0 {
		q.Set("wait", strconv.FormatFloat(wait.Seconds(), 'g', -1, 64))
	}
	path := "/grid/plan/" + jobID + "?" + q.Encode()
	req, err := c.newRequest(http.MethodGet, path, nil)
	if err != nil {
		return grid.Plan{}, "", false, err
	}
	if haveETag != "" {
		req.Header.Set("If-None-Match", haveETag)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return grid.Plan{}, "", false, err
	}
	defer resp.Body.Close()
	etag = resp.Header.Get("ETag")
	if resp.StatusCode == http.StatusNotModified {
		return grid.Plan{}, etag, false, nil
	}
	if resp.StatusCode >= 300 {
		return grid.Plan{}, "", false, fmt.Errorf("client: GET %s%s: %s", c.BaseURL, path, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&p)
	return p, etag, err == nil, err
}

// RegionInfo mirrors the server's registered-region summary.
type RegionInfo struct {
	Name      string  `json:"name"`
	GPUs      int     `json:"gpus"`
	CapW      float64 `json:"cap_w"`
	Intervals int     `json:"intervals"`
	HorizonS  float64 `json:"horizon_s"`
}

// RegisterRegion registers a datacenter region — GPU capacity, facility
// power cap, and its own grid signal — with the server.
func (c *ServerClient) RegisterRegion(name string, gpus int, capW float64, sig grid.Signal) (RegionInfo, error) {
	payload := struct {
		Name   string      `json:"name"`
		GPUs   int         `json:"gpus,omitempty"`
		CapW   float64     `json:"cap_w,omitempty"`
		Signal grid.Signal `json:"signal"`
	}{name, gpus, capW, sig}
	var info RegionInfo
	err := c.post("/regions", payload, &info)
	return info, err
}

// FetchRegions lists the registered regions.
func (c *ServerClient) FetchRegions() ([]RegionInfo, error) {
	var out []RegionInfo
	err := c.get("/regions", &out)
	return out, err
}

// PlacementEntry mirrors one step of a job's placement history.
type PlacementEntry struct {
	Region  string  `json:"region"`
	AtUnixS float64 `json:"at_unix_s"`
}

// Placement mirrors the server's per-job placement view.
type Placement struct {
	JobID      string           `json:"job_id"`
	Region     string           `json:"region"`
	Migrations int              `json:"migrations"`
	History    []PlacementEntry `json:"history,omitempty"`
}

// PlaceJob places (or migrates) a job into a registered region; the
// server settles emissions at the old placement's rates first.
func (c *ServerClient) PlaceJob(jobID, regionName string) (Placement, error) {
	payload := struct {
		Region string `json:"region"`
	}{regionName}
	var p Placement
	err := c.post("/jobs/"+jobID+"/placement", payload, &p)
	return p, err
}

// PlaceJobMigrating is PlaceJob with an explicit migration energy
// overhead in joules (checkpoint, transfer, restart), charged at the
// destination's instantaneous rates into the job's emissions account
// and booked as migration overhead in the bloat ledger.
func (c *ServerClient) PlaceJobMigrating(jobID, regionName string, migrationJ float64) (Placement, error) {
	payload := struct {
		Region     string  `json:"region"`
		MigrationJ float64 `json:"migration_j,omitempty"`
	}{regionName, migrationJ}
	var p Placement
	err := c.post("/jobs/"+jobID+"/placement", payload, &p)
	return p, err
}

// FetchPlacement returns a job's current placement and history.
func (c *ServerClient) FetchPlacement(jobID string) (Placement, error) {
	var p Placement
	err := c.get("/jobs/"+jobID+"/placement", &p)
	return p, err
}

// FetchRegionsPlan plans every characterized job's spatio-temporal
// schedule across the registered regions: target iterations per job by
// the deadline (0 = longest region trace), minimizing the objective
// ("" = server default), with migration modeled as the given
// downtime + transfer energy. The decoded plan mirrors region.Plan.
func (c *ServerClient) FetchRegionsPlan(iterations, deadline float64, objective string, downtimeS, migrationJ float64) (region.Plan, error) {
	q := url.Values{}
	q.Set("iterations", strconv.FormatFloat(iterations, 'g', -1, 64))
	q.Set("deadline", strconv.FormatFloat(deadline, 'g', -1, 64))
	q.Set("downtime", strconv.FormatFloat(downtimeS, 'g', -1, 64))
	q.Set("migration_j", strconv.FormatFloat(migrationJ, 'g', -1, 64))
	if objective != "" {
		q.Set("objective", objective)
	}
	var plan region.Plan
	err := c.get("/regions/plan?"+q.Encode(), &plan)
	return plan, err
}

// Emissions mirrors the server's per-job cumulative emissions account,
// including the forecast-predicted accrual and its drift from the
// realized one.
type Emissions struct {
	JobID        string  `json:"job_id"`
	Ready        bool    `json:"ready"`
	SinceS       float64 `json:"since_s"`
	EnergyJ      float64 `json:"energy_j"`
	CarbonG      float64 `json:"carbon_g"`
	CostUSD      float64 `json:"cost_usd"`
	PredCarbonG  float64 `json:"pred_carbon_g"`
	PredCostUSD  float64 `json:"pred_cost_usd"`
	DriftCarbonG float64 `json:"drift_carbon_g"`
}

// FetchEmissions returns a job's cumulative emissions accounting.
func (c *ServerClient) FetchEmissions(jobID string) (Emissions, error) {
	var e Emissions
	err := c.get("/jobs/"+jobID+"/emissions", &e)
	return e, err
}

// ForecastAck mirrors the server's issued-forecast summary. The
// embedded Forecast carries the point-forecast signal plus carbon and
// price uncertainty bands.
type ForecastAck struct {
	Model     string             `json:"model"`
	Level     float64            `json:"level"`
	Quantile  float64            `json:"quantile"`
	IssuedS   float64            `json:"issued_s"`
	HorizonS  float64            `json:"horizon_s"`
	Intervals int                `json:"intervals"`
	Forecast  *forecast.Forecast `json:"forecast"`
}

// InstallForecast installs a forecast model (persistence, seasonal, or
// smoothed) over the installed grid signal and returns the forecast
// issued from the history revealed so far. level is the uncertainty-
// band quantile (0 = 0.9); quantile is the default robust planning
// quantile re-plans use (0 = plan on the point forecast); horizonS
// extends coverage (0 = one signal cycle beyond now).
func (c *ServerClient) InstallForecast(model string, level, quantile, horizonS float64) (ForecastAck, error) {
	payload := struct {
		Model    string  `json:"model"`
		Level    float64 `json:"level,omitempty"`
		Quantile float64 `json:"quantile,omitempty"`
		HorizonS float64 `json:"horizon_s,omitempty"`
	}{model, level, quantile, horizonS}
	var ack ForecastAck
	err := c.post("/grid/forecast", payload, &ack)
	return ack, err
}

// InstallRevisionsForecast installs the seeded noisy-revision issuer
// over the installed grid signal: every issue (install, replan,
// controller tick) sees the signal's future multiplied by seeded
// lognormal innovations that drain as boundaries pass — the external
// forecast feed the MPC experiments replay. sigma 0 uses the provider
// default; horizonS extends coverage like InstallForecast.
func (c *ServerClient) InstallRevisionsForecast(seed int64, sigma, level, quantile, horizonS float64) (ForecastAck, error) {
	payload := struct {
		Model    string  `json:"model"`
		Level    float64 `json:"level,omitempty"`
		Quantile float64 `json:"quantile,omitempty"`
		HorizonS float64 `json:"horizon_s,omitempty"`
		Seed     int64   `json:"seed,omitempty"`
		Sigma    float64 `json:"sigma,omitempty"`
	}{"revisions", level, quantile, horizonS, seed, sigma}
	var ack ForecastAck
	err := c.post("/grid/forecast", payload, &ack)
	return ack, err
}

// FetchForecast returns the latest issued forecast.
func (c *ServerClient) FetchForecast() (ForecastAck, error) {
	var ack ForecastAck
	err := c.get("/grid/forecast", &ack)
	return ack, err
}

// ReplanInterval mirrors one frozen span of a rolling-horizon
// schedule.
type ReplanInterval struct {
	StartS      float64      `json:"start_s"`
	EndS        float64      `json:"end_s"`
	Slices      []grid.Slice `json:"slices,omitempty"`
	IdleS       float64      `json:"idle_s"`
	Iterations  float64      `json:"iterations"`
	EnergyJ     float64      `json:"energy_j"`
	CarbonG     float64      `json:"carbon_g"`
	CostUSD     float64      `json:"cost_usd"`
	PredCarbonG float64      `json:"pred_carbon_g"`
	PredCostUSD float64      `json:"pred_cost_usd"`
}

// Replan mirrors the server's rolling-horizon schedule state: the
// frozen executed prefix plus the freshly re-planned remainder.
type Replan struct {
	JobID               string           `json:"job_id"`
	Target              float64          `json:"target_iterations"`
	DeadlineS           float64          `json:"deadline_s"`
	Objective           string           `json:"objective"`
	Quantile            float64          `json:"quantile"`
	Plans               int              `json:"plans"`
	DoneIterations      float64          `json:"done_iterations"`
	RemainingIterations float64          `json:"remaining_iterations"`
	Feasible            bool             `json:"feasible"`
	Frozen              []ReplanInterval `json:"frozen,omitempty"`
	EnergyJ             float64          `json:"energy_j"`
	CarbonG             float64          `json:"carbon_g"`
	CostUSD             float64          `json:"cost_usd"`
	PredCarbonG         float64          `json:"pred_carbon_g"`
	PredCostUSD         float64          `json:"pred_cost_usd"`
	Remaining           *grid.Plan       `json:"remaining,omitempty"`
	RemainingOffsetS    float64          `json:"remaining_offset_s"`
}

// FetchReplan rolls the job's forecast-driven schedule forward on the
// server: freeze what has executed since the last call, re-plan the
// remainder against a freshly issued forecast. deadline 0 means the
// forecast horizon; quantile 0 uses the installed default, values
// above 0.5 plan against the pessimistic band.
func (c *ServerClient) FetchReplan(jobID string, iterations, deadline float64, objective string, quantile float64) (Replan, error) {
	q := url.Values{}
	q.Set("iterations", strconv.FormatFloat(iterations, 'g', -1, 64))
	q.Set("deadline", strconv.FormatFloat(deadline, 'g', -1, 64))
	if objective != "" {
		q.Set("objective", objective)
	}
	if quantile != 0 {
		q.Set("quantile", strconv.FormatFloat(quantile, 'g', -1, 64))
	}
	var resp Replan
	err := c.get("/grid/replan/"+jobID+"?"+q.Encode(), &resp)
	return resp, err
}

// FetchScheduleIfChanged fetches the deployed schedule only if its
// version moved past haveVersion, long-polling up to wait: the request
// carries If-None-Match with the version's entity tag, and the server
// blocks until a version bump or the wait expires. changed is false
// (with a zero Schedule) on 304 Not Modified — the trainer keeps its
// current schedule. This is how a trainer observes the background
// controller's re-plans without ever calling /grid/replan.
func (c *ServerClient) FetchScheduleIfChanged(jobID string, haveVersion int, wait time.Duration) (s Schedule, changed bool, err error) {
	path := "/jobs/" + jobID + "/schedule"
	if wait > 0 {
		path += "?wait=" + strconv.FormatFloat(wait.Seconds(), 'g', -1, 64)
	}
	u := c.BaseURL + path
	req, err := c.newRequest(http.MethodGet, path, nil)
	if err != nil {
		return Schedule{}, false, err
	}
	req.Header.Set("If-None-Match", fmt.Sprintf("%q", "v"+strconv.Itoa(haveVersion)))
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return Schedule{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		return Schedule{}, false, nil
	}
	if resp.StatusCode >= 300 {
		return Schedule{}, false, fmt.Errorf("client: GET %s: %s", u, resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&s)
	return s, err == nil, err
}

// Rollout mirrors the server's read-only rolling-schedule view: the
// replan state plus the job's schedule version and whether the
// background controller manages it.
type Rollout struct {
	Replan
	Version int  `json:"version"`
	Managed bool `json:"managed"`
}

// FetchRollout returns the job's rolling-horizon schedule state
// without triggering a re-plan.
func (c *ServerClient) FetchRollout(jobID string) (Rollout, error) {
	var r Rollout
	err := c.get("/jobs/"+jobID+"/rollout", &r)
	return r, err
}

// ControllerJobStatus mirrors one managed job's controller view.
type ControllerJobStatus struct {
	JobID               string  `json:"job_id"`
	Version             int     `json:"version"`
	Plans               int     `json:"plans"`
	DoneIterations      float64 `json:"done_iterations"`
	RemainingIterations float64 `json:"remaining_iterations"`
	Feasible            bool    `json:"feasible"`
	LastError           string  `json:"last_error,omitempty"`
	LastReplanUnixS     float64 `json:"last_replan_unix_s,omitempty"`
}

// CacheStats mirrors the server's plan-cache counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// ControllerStatus mirrors the server's controller runtime status.
// NextBoundaryS counts down, in seconds from now, to the next
// signal-interval boundary the loop would tick at (-1 = no signal).
type ControllerStatus struct {
	Running       bool                  `json:"running"`
	Ticks         int                   `json:"ticks"`
	LastTickUnixS float64               `json:"last_tick_unix_s,omitempty"`
	LastTickError string                `json:"last_tick_error,omitempty"`
	NextBoundaryS float64               `json:"next_boundary_s"`
	Jobs          []ControllerJobStatus `json:"jobs"`
	Cache         CacheStats            `json:"cache"`
}

// ManageJob puts the job's rolling-horizon schedule under the server
// controller's management: the schedule is planned immediately and
// re-planned at every subsequent controller tick, with version bumps
// observable through FetchScheduleIfChanged.
func (c *ServerClient) ManageJob(jobID string, iterations, deadline float64, objective string, quantile float64) (Replan, error) {
	payload := struct {
		JobID     string  `json:"job_id"`
		Target    float64 `json:"iterations"`
		DeadlineS float64 `json:"deadline_s,omitempty"`
		Objective string  `json:"objective,omitempty"`
		Quantile  float64 `json:"quantile,omitempty"`
	}{jobID, iterations, deadline, objective, quantile}
	var resp Replan
	err := c.post("/controller/jobs", payload, &resp)
	return resp, err
}

// StartController starts the server's background tick loop.
func (c *ServerClient) StartController() (ControllerStatus, error) {
	var st ControllerStatus
	err := c.post("/controller/start", struct{}{}, &st)
	return st, err
}

// StopController stops the server's background tick loop.
func (c *ServerClient) StopController() (ControllerStatus, error) {
	var st ControllerStatus
	err := c.post("/controller/stop", struct{}{}, &st)
	return st, err
}

// TickController runs one controller tick synchronously.
func (c *ServerClient) TickController() (ControllerStatus, error) {
	var st ControllerStatus
	err := c.post("/controller/tick", struct{}{}, &st)
	return st, err
}

// FetchControllerStatus returns the controller runtime status.
func (c *ServerClient) FetchControllerStatus() (ControllerStatus, error) {
	var st ControllerStatus
	err := c.get("/controller", &st)
	return st, err
}

// SLOStatus mirrors one SLO rule's multi-window burn-rate status
// (GET /debug/slo and the healthz slos list).
type SLOStatus struct {
	Name         string  `json:"name"`
	Objective    string  `json:"objective,omitempty"`
	Status       string  `json:"status"`
	Value        float64 `json:"value"`
	ShortValue   float64 `json:"short_value"`
	Threshold    float64 `json:"threshold"`
	BurnRate     float64 `json:"burn_rate"`
	WorstTraceID string  `json:"worst_trace_id,omitempty"`
	SinceUnixS   float64 `json:"since_unix_s"`
	Detail       string  `json:"detail,omitempty"`
}

// Health mirrors the server's GET /healthz liveness and readiness
// view: Status is the worst per-SLO level (ok, warn, breach) and
// Ready is false while any SLO is in breach.
type Health struct {
	Status            string      `json:"status"`
	Ready             bool        `json:"ready"`
	UptimeS           float64     `json:"uptime_s"`
	Jobs              int         `json:"jobs"`
	Regions           int         `json:"regions"`
	SignalInstalled   bool        `json:"signal_installed"`
	ForecastInstalled bool        `json:"forecast_installed"`
	ControllerRunning bool        `json:"controller_running"`
	SLOs              []SLOStatus `json:"slos"`
}

// FetchHealth returns the server's liveness summary.
func (c *ServerClient) FetchHealth() (Health, error) {
	var h Health
	err := c.get("/healthz", &h)
	return h, err
}

// FetchMetrics returns the server's /metrics endpoint verbatim:
// Prometheus text exposition format 0.0.4.
func (c *ServerClient) FetchMetrics() (string, error) {
	req, err := c.newRequest(http.MethodGet, "/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return "", fmt.Errorf("client: GET /metrics: %s", resp.Status)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// Event mirrors one structured event from the server's bounded event
// ring (GET /debug/events).
type Event struct {
	Seq     uint64            `json:"seq"`
	AtUnixS float64           `json:"at_unix_s"`
	Name    string            `json:"name"`
	DurS    float64           `json:"dur_s"`
	Labels  map[string]string `json:"labels,omitempty"`
}

// FetchEvents returns the server's most recent structured events,
// oldest first; limit <= 0 fetches the whole retained window.
func (c *ServerClient) FetchEvents(limit int) ([]Event, error) {
	path := "/debug/events"
	if limit > 0 {
		path += "?n=" + strconv.Itoa(limit)
	}
	var resp struct {
		Events []Event `json:"events"`
	}
	if err := c.get(path, &resp); err != nil {
		return nil, err
	}
	return resp.Events, nil
}

// FetchEventsSince returns the retained events with Seq > since,
// oldest first, capped at limit (<= 0 uncapped) — the cursor read a
// poller advances with: pass the last event's Seq back as since and
// only newer events come back.
func (c *ServerClient) FetchEventsSince(since uint64, limit int) ([]Event, error) {
	q := url.Values{}
	q.Set("since", strconv.FormatUint(since, 10))
	if limit > 0 {
		q.Set("n", strconv.Itoa(limit))
	}
	var resp struct {
		Events []Event `json:"events"`
	}
	if err := c.get("/debug/events?"+q.Encode(), &resp); err != nil {
		return nil, err
	}
	return resp.Events, nil
}

// Span mirrors one finished span of a server-side trace.
type Span struct {
	TraceID    string            `json:"trace_id"`
	SpanID     string            `json:"span_id"`
	ParentID   string            `json:"parent_id,omitempty"`
	Name       string            `json:"name"`
	StartUnixS float64           `json:"start_unix_s"`
	DurS       float64           `json:"dur_s"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Error      string            `json:"error,omitempty"`
}

// Trace mirrors one assembled span tree from GET /debug/traces.
type Trace struct {
	TraceID    string  `json:"trace_id"`
	Root       string  `json:"root,omitempty"`
	StartUnixS float64 `json:"start_unix_s"`
	DurS       float64 `json:"dur_s"`
	Err        bool    `json:"err,omitempty"`
	Spans      []Span  `json:"spans"`
}

// FetchTraces returns the server's retained traces, newest first.
// limit <= 0 fetches every retained trace; minMs keeps only traces at
// least that many milliseconds long; op keeps only traces containing a
// span with that exact name ("" keeps all).
func (c *ServerClient) FetchTraces(limit int, minMs float64, op string) ([]Trace, error) {
	q := url.Values{}
	if limit > 0 {
		q.Set("n", strconv.Itoa(limit))
	}
	if minMs > 0 {
		q.Set("min_ms", strconv.FormatFloat(minMs, 'g', -1, 64))
	}
	if op != "" {
		q.Set("op", op)
	}
	path := "/debug/traces"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var resp struct {
		Traces []Trace `json:"traces"`
	}
	if err := c.get(path, &resp); err != nil {
		return nil, err
	}
	return resp.Traces, nil
}

// FetchSLOs evaluates the server's SLO rules now and returns the
// per-rule multi-window burn-rate statuses (GET /debug/slo).
func (c *ServerClient) FetchSLOs() ([]SLOStatus, error) {
	var resp struct {
		SLOs []SLOStatus `json:"slos"`
	}
	if err := c.get("/debug/slo", &resp); err != nil {
		return nil, err
	}
	return resp.SLOs, nil
}

// RemoveJob unregisters a job: the server settles its final span,
// removes it from the fleet and controller, and deletes its per-job
// metric series (fleet-wide ledger totals are retained).
func (c *ServerClient) RemoveJob(jobID string) error {
	return c.del("/jobs/" + jobID)
}

// LedgerSpan mirrors one energy-bloat decomposition (plan.BloatSpan):
// realized energy/carbon/cost split into the frontier-optimal floor,
// migration overhead, and residual bloat, plus the intrinsic-bloat,
// temporal-shifting, and forecast-drift attributions.
type LedgerSpan struct {
	EnergyJ        float64 `json:"energy_j"`
	CarbonG        float64 `json:"carbon_g"`
	CostUSD        float64 `json:"cost_usd"`
	Iterations     float64 `json:"iterations"`
	FloorJ         float64 `json:"floor_j"`
	MigrationJ     float64 `json:"migration_j"`
	ResidualJ      float64 `json:"residual_j"`
	TminJ          float64 `json:"tmin_j"`
	RemovedJ       float64 `json:"removed_j"`
	FloorC         float64 `json:"floor_c"`
	MigrationC     float64 `json:"migration_c"`
	ResidualC      float64 `json:"residual_c"`
	BlindC         float64 `json:"blind_c"`
	TemporalSavedC float64 `json:"temporal_saved_c"`
	PredC          float64 `json:"pred_c"`
	PredRealC      float64 `json:"pred_real_c"`
	DriftC         float64 `json:"drift_c"`
}

// LedgerEntry mirrors one settled ledger interval ("span") or
// migration charge ("migration").
type LedgerEntry struct {
	StartUnixS float64 `json:"start_unix_s"`
	EndUnixS   float64 `json:"end_unix_s"`
	Kind       string  `json:"kind"`
	LedgerSpan
}

// LedgerTotals mirrors cumulative ledger totals: every settled entry
// accumulated since registration (Entries counts them; Dropped counts
// entries evicted from the bounded per-job ring, still in the totals).
type LedgerTotals struct {
	Entries int `json:"entries"`
	Dropped int `json:"dropped"`
	LedgerSpan
	AbsDriftC float64 `json:"abs_drift_c"`
}

// JobLedger mirrors one job's ledger view: cumulative totals plus the
// retained tail of per-interval entries, oldest first.
type JobLedger struct {
	JobID   string        `json:"job_id"`
	Totals  LedgerTotals  `json:"totals"`
	Entries []LedgerEntry `json:"entries"`
}

// Ledger mirrors GET /debug/ledger: the fleet-wide rollup plus per-job
// views in registration order.
type Ledger struct {
	Fleet LedgerTotals `json:"fleet"`
	Jobs  []JobLedger  `json:"jobs"`
}

// FetchLedger returns the energy-bloat ledger. jobID "" fetches every
// job; n caps the per-job entries returned, newest retained (<= 0
// returns the whole retained ring).
func (c *ServerClient) FetchLedger(jobID string, n int) (Ledger, error) {
	var led Ledger
	err := c.get("/debug/ledger"+ledgerQuery(jobID, n, ""), &led)
	return led, err
}

// FetchLedgerCSV returns the ledger rendered as CSV (one row per
// retained entry; see the server's ledgerCSVHeader for the schema).
func (c *ServerClient) FetchLedgerCSV(jobID string, n int) (string, error) {
	path := "/debug/ledger" + ledgerQuery(jobID, n, "csv")
	req, err := c.newRequest(http.MethodGet, path, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return "", fmt.Errorf("client: GET %s: %s", path, resp.Status)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return "", err
	}
	return buf.String(), nil
}

func ledgerQuery(jobID string, n int, format string) string {
	q := url.Values{}
	if jobID != "" {
		q.Set("job", jobID)
	}
	if n > 0 {
		q.Set("n", strconv.Itoa(n))
	}
	if format != "" {
		q.Set("format", format)
	}
	if enc := q.Encode(); enc != "" {
		return "?" + enc
	}
	return ""
}
