package server

import (
	"math"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"perseus/internal/client"
	"perseus/internal/experiments"
	"perseus/internal/grid"
)

// TestControllerClosesMPCLoop is the end-to-end acceptance check for
// the background controller: with a revising forecast installed and a
// job under controller management, ticks at every signal-interval
// boundary roll the schedule forward server-side. The client observes
// strictly increasing schedule versions through conditional fetches and
// reads the final rolling schedule through the read-only rollout view —
// it never calls /grid/replan — and the realized carbon total matches
// experiments.ForecastComparison's MPC row for the same seed exactly.
func TestControllerClosesMPCLoop(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	srv := New()
	srv.SetClock(clock.Now)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	tbl, err := srv.Table(id)
	if err != nil {
		t.Fatal(err)
	}
	sig := forecastTestSignal()
	if _, err := cl.UploadGridSignal(sig, ""); err != nil {
		t.Fatal(err)
	}
	const seed, sigma = int64(11), 0.2
	const deadline = 14400.0
	if _, err := cl.InstallRevisionsForecast(seed, sigma, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	target := math.Floor(0.8 * deadline / tbl.Tmin())

	// Manage the job: plan #1 is issued immediately.
	first, err := cl.ManageJob(id, target, deadline, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.Plans != 1 || len(first.Frozen) != 0 {
		t.Fatalf("managed job's initial schedule: %+v", first)
	}

	sched, err := cl.FetchSchedule(id)
	if err != nil {
		t.Fatal(err)
	}
	version := sched.Version

	// Tick at every interval boundary up to the deadline. The client
	// only ever issues conditional schedule fetches and rollout reads.
	bumps := 0
	for _, boundary := range []float64{3600, 7200, 10800, 14400} {
		now := clock.Now()
		at := time.Unix(1_700_000_000, 0).Add(time.Duration(boundary * float64(time.Second)))
		clock.Advance(at.Sub(now))
		st, err := cl.TickController()
		if err != nil {
			t.Fatal(err)
		}
		if st.Ticks == 0 || len(st.Jobs) != 1 || st.Jobs[0].LastError != "" {
			t.Fatalf("tick at %v: %+v", boundary, st)
		}
		s2, changed, err := cl.FetchScheduleIfChanged(id, version, 0)
		if err != nil {
			t.Fatal(err)
		}
		if changed {
			if s2.Version <= version {
				t.Fatalf("version did not increase monotonically: %d -> %d", version, s2.Version)
			}
			version = s2.Version
			bumps++
		}
	}
	// Every boundary before the deadline re-plans (the revising
	// forecast changes at each), so the client saw version bumps.
	if bumps < 3 {
		t.Fatalf("client observed only %d version bumps across the ticks", bumps)
	}

	roll, err := cl.FetchRollout(id)
	if err != nil {
		t.Fatal(err)
	}
	if !roll.Managed {
		t.Fatal("rollout does not report controller management")
	}
	if math.Abs(roll.DoneIterations-target) > 1e-6*(1+target) {
		t.Fatalf("controller completed %v of %v iterations", roll.DoneIterations, target)
	}
	if roll.RemainingIterations != 0 || roll.Remaining != nil {
		t.Fatalf("work left after the deadline: %+v", roll.Replan)
	}

	// The realized total must equal the MPC row of the offline forecast
	// comparison on the same scenario: the server closed exactly the
	// same rolling-horizon loop.
	strategies, err := experiments.ForecastComparison(tbl, experiments.ForecastScenario{
		Truth: &sig, Seed: seed, Sigma: sigma, Target: target, DeadlineS: deadline,
	})
	if err != nil {
		t.Fatal(err)
	}
	var mpcCarbon float64
	found := false
	for _, st := range strategies {
		if st.Name == "MPC re-planning" {
			mpcCarbon = st.Outcome.CarbonG
			found = true
		}
	}
	if !found {
		t.Fatal("comparison has no MPC row")
	}
	if math.Abs(roll.CarbonG-mpcCarbon) > 1e-9*(1+mpcCarbon) {
		t.Fatalf("controller realized %v g, offline MPC row %v g", roll.CarbonG, mpcCarbon)
	}
}

// TestControllerTickClientReplanRace drives controller ticks and
// client replan calls concurrently with a moving clock (run under
// -race): the two share one serialized roll-forward, so the frozen
// prefix must never rewind, overlap, or diverge between observers.
func TestControllerTickClientReplanRace(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	srv := New()
	srv.SetClock(clock.Now)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	tbl, err := srv.Table(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.UploadGridSignal(forecastTestSignal(), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.InstallRevisionsForecast(3, 0.15, 0, 0, 0); err != nil {
		t.Fatal(err)
	}
	target := math.Floor(0.8 * 14400 / tbl.Tmin())
	if _, err := srv.ManageJob(id, target, 14400, "", 0); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var views []*client.Replan
	record := func(r client.Replan) {
		mu.Lock()
		views = append(views, &r)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				switch w {
				case 0:
					srv.TickController()
				case 1:
					r, err := cl.FetchReplan(id, target, 14400, "", 0)
					if err != nil {
						t.Error(err)
						return
					}
					record(r)
				default:
					clock.Advance(4 * time.Minute)
					r, err := cl.FetchRollout(id)
					if err != nil {
						t.Error(err)
						return
					}
					record(r.Replan)
				}
			}
		}(w)
	}
	wg.Wait()

	// The frozen prefix never rewinds: sort observations by frozen
	// length; every longer view extends the shorter ones verbatim, and
	// frozen spans never overlap.
	final, err := cl.FetchReplan(id, target, 14400, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(final.Frozen); i++ {
		if final.Frozen[i].StartS < final.Frozen[i-1].EndS-1e-9 {
			t.Fatalf("frozen spans overlap: %+v then %+v", final.Frozen[i-1], final.Frozen[i])
		}
	}
	for _, v := range views {
		if v.RemainingOffsetS > final.RemainingOffsetS+1e-9 {
			t.Fatalf("observed offset %v beyond final %v: schedule rewound", v.RemainingOffsetS, final.RemainingOffsetS)
		}
		if len(v.Frozen) > len(final.Frozen) {
			t.Fatalf("observed %d frozen spans, final has %d: prefix shrank", len(v.Frozen), len(final.Frozen))
		}
		for i, fi := range v.Frozen {
			fj := final.Frozen[i]
			if fi.StartS != fj.StartS || fi.EndS != fj.EndS || fi.Iterations != fj.Iterations ||
				fi.CarbonG != fj.CarbonG || fi.PredCarbonG != fj.PredCarbonG {
				t.Fatalf("frozen prefix diverged at %d: %+v vs %+v", i, fi, fj)
			}
		}
		var sum float64
		for _, fi := range v.Frozen {
			sum += fi.Iterations
		}
		if math.Abs(sum-v.DoneIterations) > 1e-6*(1+sum) {
			t.Fatalf("done iterations %v do not match frozen sum %v", v.DoneIterations, sum)
		}
	}
}

// TestControllerBackgroundLoop exercises the real-time loop on a
// seconds-scale signal: started, it ticks at interval boundaries on
// its own; stopped, it stays stopped.
func TestControllerBackgroundLoop(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	sig := grid.Signal{Name: "fast", Intervals: []grid.Interval{
		{StartS: 0, EndS: 0.05, CarbonGPerKWh: 500, PriceUSDPerKWh: 0.2},
		{StartS: 0.05, EndS: 0.1, CarbonGPerKWh: 100, PriceUSDPerKWh: 0.05},
	}}
	if _, err := cl.UploadGridSignal(sig, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.StartController(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := cl.FetchControllerStatus()
		if err != nil {
			t.Fatal(err)
		}
		if st.Running && st.Ticks >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background loop never ticked: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, err := cl.StopController()
	if err != nil {
		t.Fatal(err)
	}
	if st.Running {
		t.Fatal("controller still running after stop")
	}
	// Starting twice is idempotent; stopping an idle controller is a
	// no-op.
	srv.StartController()
	srv.StartController()
	srv.StopController()
	srv.StopController()
}

// TestScheduleLongPoll pins the ETag contract: a conditional fetch
// with the current version parks until a bump arrives and 304s when
// none does; an unconditional or stale fetch answers immediately.
func TestScheduleLongPoll(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)
	sched, err := cl.FetchSchedule(id)
	if err != nil {
		t.Fatal(err)
	}

	// Current version, no wait: immediate 304.
	if _, changed, err := cl.FetchScheduleIfChanged(id, sched.Version, 0); err != nil || changed {
		t.Fatalf("conditional fetch at current version: changed=%v err=%v", changed, err)
	}
	// Stale version: immediate content.
	if s2, changed, err := cl.FetchScheduleIfChanged(id, sched.Version-1, 0); err != nil || !changed || s2.Version != sched.Version {
		t.Fatalf("stale conditional fetch: %+v changed=%v err=%v", s2, changed, err)
	}
	// Current version with wait: parks until the straggler bump.
	go func() {
		time.Sleep(50 * time.Millisecond)
		_ = srv.SetStraggler(id, StragglerNotice{ID: "x", Degree: 1.3})
	}()
	start := time.Now()
	s3, changed, err := cl.FetchScheduleIfChanged(id, sched.Version, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !changed || s3.Version <= sched.Version {
		t.Fatalf("long-poll missed the bump: %+v changed=%v", s3, changed)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("long-poll returned in %v — did not park", elapsed)
	}
	// Current version, short wait, no bump: 304 after the wait.
	if _, changed, err := cl.FetchScheduleIfChanged(id, s3.Version, 50*time.Millisecond); err != nil || changed {
		t.Fatalf("expired long-poll: changed=%v err=%v", changed, err)
	}
}
