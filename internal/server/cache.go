package server

import (
	"context"
	"strconv"
	"sync"

	"perseus/internal/grid"
	"perseus/internal/obs"
)

// planKey identifies one cacheable planning problem: the plan-input
// generation (epoch — bumped on signal re-install and forecast
// revision), the content hash of the frontier the plan is solved over
// (re-characterization changes it), and the request parameters.
type planKey struct {
	epoch     int
	table     uint64
	target    float64
	deadline  float64
	objective grid.Objective
	scale     int
}

// cacheEntry is one in-flight or completed solve. done closes when the
// plan (or error) is ready; followers wait on it instead of solving —
// single-flight de-duplication.
type cacheEntry struct {
	done chan struct{}
	plan *grid.Plan
	err  error
}

// maxPlanCacheEntries bounds the cache between epochs: a client
// sweeping distinct parameters would otherwise grow it without limit
// until the next signal or forecast install. At the cap the whole map
// is flushed (epoch-style) rather than tracking per-entry recency —
// the hot pattern the cache exists for is many identical requests, and
// a rare flush only costs those one re-solve each.
const maxPlanCacheEntries = 1024

// planCache memoizes plan solves. Entries never expire by time: a key
// embeds the epoch and frontier hash, so every input change makes a
// fresh key, clear() drops the dead generations wholesale, and the
// size cap flushes parameter sweeps.
type planCache struct {
	mu        sync.Mutex
	entries   map[planKey]*cacheEntry
	hits      int64
	misses    int64
	coalesced int64 // hits that waited on an in-flight solve
	evictions int64 // entries dropped by cap flushes and clear()
	obs       *serverObs
}

// newPlanCache returns an empty cache mirroring its counters into o
// (nil skips the mirroring — direct unit tests construct bare caches).
func newPlanCache(o *serverObs) *planCache {
	return &planCache{entries: map[planKey]*cacheEntry{}, obs: o}
}

// syncObsLocked pushes the counter state into the metric registry.
// Callers hold c.mu.
func (c *planCache) syncObsLocked() {
	if c.obs == nil {
		return
	}
	c.obs.cacheEntries.Set(float64(len(c.entries)))
}

// do returns the cached plan for key, or runs solve exactly once per
// key no matter how many callers arrive concurrently. Errors are not
// cached: the failed entry is removed so a later identical request
// retries. When ctx carries an active trace span, the lookup records a
// "cache.lookup" child span with hit/coalesced attrs; a miss's solve
// runs under that span's context, so the planner's own span nests
// below the lookup. Untraced callers pay a nil check.
func (c *planCache) do(ctx context.Context, key planKey, solve func(context.Context) (*grid.Plan, error)) (*grid.Plan, error) {
	ctx, sp := obs.Child(ctx, spanCacheLookup)
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		// A hit whose flight has not finished is a coalesced follower:
		// it parks on done instead of solving — the single-flight half
		// of the cache's value, counted separately from plain hits.
		inflight := false
		select {
		case <-e.done:
		default:
			inflight = true
			c.coalesced++
		}
		if c.obs != nil {
			c.obs.cacheHits.Inc()
			if inflight {
				c.obs.cacheCoalesced.Inc()
			}
		}
		c.mu.Unlock()
		sp.SetAttr("hit", "true")
		sp.SetAttr("coalesced", strconv.FormatBool(inflight))
		<-e.done
		sp.Fail(e.err)
		sp.End()
		return e.plan, e.err
	}
	if len(c.entries) >= maxPlanCacheEntries {
		c.evictions += int64(len(c.entries))
		if c.obs != nil {
			c.obs.cacheEvictions.Add(float64(len(c.entries)))
		}
		c.entries = map[planKey]*cacheEntry{}
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	if c.obs != nil {
		c.obs.cacheMisses.Inc()
	}
	c.syncObsLocked()
	c.mu.Unlock()
	sp.SetAttr("hit", "false")
	sp.SetAttr("coalesced", "false")
	defer sp.End()

	e.plan, e.err = solve(ctx)
	sp.Fail(e.err)
	if e.err != nil {
		c.mu.Lock()
		// Only this flight owns the key (clear() may have dropped it
		// already, or a fresh flight may own it after a clear — leave
		// someone else's entry alone).
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		c.syncObsLocked()
		c.mu.Unlock()
	}
	close(e.done)
	return e.plan, e.err
}

// clear drops every entry (the plan inputs changed). The drop counts
// as eviction: an epoch bump invalidates the whole resident
// generation.
func (c *planCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.evictions += int64(len(c.entries))
	if c.obs != nil {
		c.obs.cacheEvictions.Add(float64(len(c.entries)))
	}
	c.entries = map[planKey]*cacheEntry{}
	c.syncObsLocked()
}

// CacheStats reports the plan cache's cumulative counters and current
// size. Coalesced counts the subset of hits that waited on an
// in-flight solve; evictions counts entries dropped by epoch
// invalidation and size-cap flushes.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Coalesced int64 `json:"coalesced"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// CacheStats returns the plan cache counters (test and ops hook; also
// reported by GET /controller).
func (s *Server) CacheStats() CacheStats {
	c := s.cache
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses,
		Coalesced: c.coalesced, Evictions: c.evictions,
		Entries: len(c.entries),
	}
}
