package region

import (
	"encoding/json"
	"fmt"
	"math"
	"testing"

	"perseus/internal/frontier"
	"perseus/internal/grid"
)

// convexTable hand-builds a lookup table with E(t) = a + b/t on a unit
// grid — the same convex family internal/grid and internal/fleet verify
// their planners on.
func convexTable(unit float64, tminU, tstarU int64, a, b float64) *frontier.LookupTable {
	lt := &frontier.LookupTable{Unit: unit, TminUnits: tminU, TStarUnits: tstarU}
	for u := tminU; u <= tstarU; u++ {
		t := float64(u) * unit
		lt.Points = append(lt.Points, frontier.TablePoint{TimeUnits: u, Energy: a + b/t})
	}
	return lt
}

// flatSignal builds a constant-rate signal over [0, dur).
func flatSignal(name string, dur, carbon, price float64) *grid.Signal {
	return &grid.Signal{Name: name, Intervals: []grid.Interval{
		{StartS: 0, EndS: dur, CarbonGPerKWh: carbon, PriceUSDPerKWh: price},
	}}
}

func TestValidateErrors(t *testing.T) {
	lt := convexTable(0.01, 80, 84, 3000, 120)
	good := []Region{{Name: "a", Signal: flatSignal("a", 3600, 300, 0.1)}}
	goodJob := Job{ID: "j", Table: lt, Target: 10}
	cases := []struct {
		name    string
		regions []Region
		jobs    []Job
		opts    Options
	}{
		{"no regions", nil, []Job{goodJob}, Options{}},
		{"unnamed region", []Region{{Signal: flatSignal("", 10, 1, 1)}}, []Job{goodJob}, Options{}},
		{"dup region", append(append([]Region(nil), good...), good...), []Job{goodJob}, Options{}},
		{"nil signal", []Region{{Name: "a"}}, []Job{goodJob}, Options{}},
		{"bad signal", []Region{{Name: "a", Signal: &grid.Signal{}}}, []Job{goodJob}, Options{}},
		{"bad cap", []Region{{Name: "a", Signal: flatSignal("a", 10, 1, 1), CapW: math.NaN()}}, []Job{goodJob}, Options{}},
		{"no jobs", good, nil, Options{}},
		{"unnamed job", good, []Job{{Table: lt, Target: 1}}, Options{}},
		{"dup job", good, []Job{goodJob, goodJob}, Options{}},
		{"no table", good, []Job{{ID: "j", Target: 1}}, Options{}},
		{"bad target", good, []Job{{ID: "j", Table: lt, Target: -1}}, Options{}},
		{"bad deadline", good, []Job{{ID: "j", Table: lt, Target: 1, DeadlineS: -3}}, Options{}},
		{"inf deadline", good, []Job{{ID: "j", Table: lt, Target: 1, DeadlineS: math.Inf(1)}}, Options{}},
		{"bad migration", good, []Job{goodJob}, Options{Migration: MigrationCost{DowntimeS: -1}}},
		{"bad objective", good, []Job{goodJob}, Options{Objective: "vibes"}},
	}
	for _, tc := range cases {
		if _, err := Optimize(tc.regions, tc.jobs, tc.opts); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := Fixed(good, []Job{goodJob}, "nope", Options{}); err == nil {
		t.Error("unknown fixed region should error")
	}
}

func TestCommonGridMergesBoundaries(t *testing.T) {
	a := &grid.Signal{Intervals: []grid.Interval{
		{StartS: 0, EndS: 600}, {StartS: 600, EndS: 1200},
	}}
	b := &grid.Signal{Intervals: []grid.Interval{
		{StartS: 0, EndS: 400}, {StartS: 400, EndS: 1200},
	}}
	cells := commonGrid([]Region{{Name: "a", Signal: a}, {Name: "b", Signal: b}}, 1200)
	want := []Cell{{0, 400}, {400, 600}, {600, 1200}}
	if len(cells) != len(want) {
		t.Fatalf("cells %+v, want %+v", cells, want)
	}
	for i := range want {
		if cells[i] != want[i] {
			t.Fatalf("cell %d = %+v, want %+v", i, cells[i], want[i])
		}
	}
	// Cyclic repetition past a signal's horizon also produces edges.
	cells = commonGrid([]Region{{Name: "a", Signal: a}}, 2400)
	if len(cells) != 4 || cells[3].StartS != 1800 {
		t.Fatalf("cyclic cells %+v", cells)
	}
}

func TestMigrationsSemantics(t *testing.T) {
	cases := []struct {
		placement []int
		want      []int
	}{
		{[]int{0, 0, 0}, nil},
		{[]int{Paused, Paused, Paused}, nil},
		{[]int{0, 1, 0}, []int{1, 2}},
		{[]int{Paused, 0, 1}, []int{2}},
		// A pause between two regions still moves the checkpoint.
		{[]int{0, Paused, 1}, []int{2}},
		{[]int{0, Paused, 0}, nil},
	}
	// With an origin, the first placement elsewhere is a migration too.
	originCases := []struct {
		origin    int
		placement []int
		want      []int
	}{
		{0, []int{0, 0, 1}, []int{2}},
		{0, []int{1, 1, 1}, []int{0}},
		{0, []int{Paused, 1, 1}, []int{1}},
		{1, []int{Paused, 1, 1}, nil},
	}
	for _, tc := range originCases {
		got := migrations(tc.origin, tc.placement)
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Fatalf("migrations(%d, %v) = %v, want %v", tc.origin, tc.placement, got, tc.want)
		}
	}
	for _, tc := range cases {
		got := migrations(Paused, tc.placement)
		if len(got) != len(tc.want) {
			t.Fatalf("migrations(%v) = %v, want %v", tc.placement, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("migrations(%v) = %v, want %v", tc.placement, got, tc.want)
			}
		}
	}
}

func TestCompileCompositeSignal(t *testing.T) {
	regions := []Region{
		{Name: "a", Signal: flatSignal("a", 1800, 400, 0.2)},
		{Name: "b", Signal: flatSignal("b", 1800, 100, 0.05)},
	}
	cells := commonGrid(regions, 1800)
	if len(cells) != 1 {
		t.Fatalf("cells %+v", cells)
	}
	// Split the single 1800 s cell into three for placement control.
	cells = []Cell{{0, 600}, {600, 1200}, {1200, 1800}}

	mig := MigrationCost{DowntimeS: 100, EnergyJ: 3.6e6} // 1 kWh
	sig, sum, cellOf := compile(regions, cells, []int{0, Paused, 1}, Paused, mig, nil)
	if err := sig.Validate(); err != nil {
		t.Fatalf("composite invalid: %v", err)
	}
	// Intervals: [0,600)@a, [600,1200) paused, [1200,1300) downtime,
	// [1300,1800)@b.
	if len(sig.Intervals) != 4 {
		t.Fatalf("intervals %+v", sig.Intervals)
	}
	if iv := sig.Intervals[1]; iv.CapW != forceIdleCapW || iv.CarbonGPerKWh != 0 {
		t.Fatalf("paused interval %+v", iv)
	}
	if iv := sig.Intervals[2]; iv.StartS != 1200 || iv.EndS != 1300 || iv.CapW != forceIdleCapW || iv.CarbonGPerKWh != 100 {
		t.Fatalf("downtime interval %+v", iv)
	}
	if iv := sig.Intervals[3]; iv.StartS != 1300 || iv.CapW != 0 {
		t.Fatalf("post-downtime interval %+v", iv)
	}
	if sum.count != 1 || sum.downtimeS != 100 || sum.energyJ != 3.6e6 {
		t.Fatalf("summary %+v", sum)
	}
	// 1 kWh at the arrival region's rates.
	if math.Abs(sum.carbonG-100) > 1e-9 || math.Abs(sum.costUSD-0.05) > 1e-12 {
		t.Fatalf("migration pricing %+v", sum)
	}
	wantCells := []int{0, 1, 2, 2}
	for i, k := range cellOf {
		if k != wantCells[i] {
			t.Fatalf("cellOf %v, want %v", cellOf, wantCells)
		}
	}

	// Downtime longer than the arrival cell spills into the next.
	sig, _, _ = compile(regions, cells, []int{0, 1, 1}, Paused, MigrationCost{DowntimeS: 700}, nil)
	if err := sig.Validate(); err != nil {
		t.Fatalf("spill composite invalid: %v", err)
	}
	// [0,600)@a, [600,1200) idle (downtime), [1200,1300) idle (spill),
	// [1300,1800)@b.
	if len(sig.Intervals) != 4 || sig.Intervals[2].EndS != 1300 || sig.Intervals[2].CapW != forceIdleCapW {
		t.Fatalf("spill intervals %+v", sig.Intervals)
	}
}

func TestPhaseShiftedPair(t *testing.T) {
	pair := PhaseShiftedPair(8)
	if len(pair) != 2 || pair[0].Name != "west" || pair[1].Name != "east" {
		t.Fatalf("pair %+v", pair)
	}
	for _, r := range pair {
		if err := r.Signal.Validate(); err != nil {
			t.Fatalf("%s invalid: %v", r.Name, err)
		}
		if r.GPUs != 8 {
			t.Fatalf("%s capacity %d, want 8", r.Name, r.GPUs)
		}
	}
	w, e := pair[0].Signal, pair[1].Signal
	for h := 0; h < 24; h++ {
		if e.Intervals[h].CarbonGPerKWh != w.Intervals[(h+12)%24].CarbonGPerKWh {
			t.Fatalf("east hour %d not west hour %d", h, (h+12)%24)
		}
	}
}

func TestPlannerPrefersCleanRegion(t *testing.T) {
	lt := convexTable(0.01, 80, 90, 3000, 120)
	regions := []Region{
		{Name: "dirty", Signal: flatSignal("dirty", 3600, 500, 0.25)},
		{Name: "clean", Signal: flatSignal("clean", 3600, 100, 0.04)},
	}
	jobs := []Job{{ID: "j", Table: lt, Target: 1000}}
	plan, err := Optimize(regions, jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatalf("plan infeasible: %+v", plan)
	}
	for _, a := range plan.Jobs[0].Assignments {
		if a.Region == 0 {
			t.Fatalf("planner placed work in the dirty region: %+v", a)
		}
	}
	if plan.Jobs[0].Migrations != 0 {
		t.Fatalf("constant rates cannot justify migration: %+v", plan.Jobs[0])
	}
	// With constant rates NoMigration matches the planner, and pinning
	// to the dirty region costs strictly more.
	noMig, err := NoMigration(regions, jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(noMig.CarbonG-plan.CarbonG) > 1e-9*(1+plan.CarbonG) {
		t.Fatalf("no-migration %v != planner %v under constant rates", noMig.CarbonG, plan.CarbonG)
	}
	dirty, err := Fixed(regions, jobs, "dirty", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(plan.CarbonG < dirty.CarbonG) {
		t.Fatalf("planner %v not below dirty-region pin %v", plan.CarbonG, dirty.CarbonG)
	}
	// Plans survive JSON encoding (the server returns them over HTTP).
	if _, err := json.Marshal(plan); err != nil {
		t.Fatalf("plan does not marshal: %v", err)
	}
}

func TestCapacityForcesSpread(t *testing.T) {
	lt := convexTable(0.01, 80, 90, 3000, 120)
	regions := []Region{
		{Name: "clean", GPUs: 1, Signal: flatSignal("clean", 3600, 100, 0.04)},
		{Name: "dirty", GPUs: 1, Signal: flatSignal("dirty", 3600, 500, 0.25)},
	}
	jobs := []Job{
		{ID: "a", Table: lt, Target: 2000},
		{ID: "b", Table: lt, Target: 2000},
	}
	plan, err := Optimize(regions, jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatalf("plan infeasible: %+v", plan)
	}
	// Both jobs need most of the hour: capacity 1 per region forces
	// them apart whenever both run.
	for k := range plan.Cells {
		count := map[int]int{}
		for _, jp := range plan.Jobs {
			if r := jp.Assignments[k].Region; r >= 0 {
				count[r]++
			}
		}
		for r, n := range count {
			if n > 1 {
				t.Fatalf("cell %d: %d jobs in region %s (capacity 1)", k, n, plan.Regions[r])
			}
		}
	}
}

func TestRegionCapForcesIdleOrElsewhere(t *testing.T) {
	lt := convexTable(0.01, 80, 90, 3000, 120)
	minPower := lt.AvgPower(len(lt.Points) - 1)
	regions := []Region{
		// The starved region cannot run even the T* point.
		{Name: "starved", Signal: flatSignal("starved", 3600, 50, 0.01), CapW: minPower * 0.5},
		{Name: "open", Signal: flatSignal("open", 3600, 400, 0.2)},
	}
	jobs := []Job{{ID: "j", Table: lt, Target: 1000}}
	plan, err := Optimize(regions, jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatal("open region should make the target feasible")
	}
	// All completed iterations must come from the open region.
	for i, a := range plan.Jobs[0].Assignments {
		if a.Region == 0 {
			// Placing in the starved region is legal but can only idle.
			for _, ip := range plan.Jobs[0].Temporal.Intervals {
				if ip.Index == i && ip.Iterations > 0 {
					t.Fatalf("iterations ran in the power-starved region: %+v", ip)
				}
			}
		}
	}
}

// TestBundledPhaseShiftedBeatsBaselines is the acceptance-criteria demo
// check: on the bundled two-region phase-shifted diurnal pair, at equal
// iterations completed, the region planner's total carbon is strictly
// below both the best fixed-placement plan and the no-migration plan —
// chasing the two out-of-phase solar valleys pays for the checkpoint
// moves.
func TestBundledPhaseShiftedBeatsBaselines(t *testing.T) {
	lt := convexTable(0.01, 80, 110, 3000, 120)
	regions := PhaseShiftedPair(8)
	// Target: ~60% of one region's T*-speed daily capacity — too much to
	// fit inside a single region's clean window.
	target := math.Floor(0.6 * 86400 / lt.TStar())
	opts := Options{Migration: MigrationCost{DowntimeS: 600, EnergyJ: 1e6}}
	jobs := []Job{{ID: "train", Table: lt, Target: target}}

	plan, err := Optimize(regions, jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	bestFixed, err := BestFixed(regions, jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	noMig, err := NoMigration(regions, jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	for name, p := range map[string]*Plan{"planner": plan, "best-fixed": bestFixed, "no-migration": noMig} {
		if !p.Feasible {
			t.Fatalf("%s infeasible", name)
		}
		got := p.Jobs[0].Temporal.Iterations
		if math.Abs(got-target) > 1e-6*target {
			t.Fatalf("%s completes %.3f iterations, want %.3f", name, got, target)
		}
	}
	if !(plan.CarbonG < bestFixed.CarbonG) {
		t.Fatalf("planner carbon %.1f g not strictly below best fixed placement %.1f g",
			plan.CarbonG, bestFixed.CarbonG)
	}
	if !(plan.CarbonG < noMig.CarbonG) {
		t.Fatalf("planner carbon %.1f g not strictly below no-migration %.1f g",
			plan.CarbonG, noMig.CarbonG)
	}
	if plan.Jobs[0].Migrations == 0 {
		t.Fatal("the phase-shifted pair should make at least one migration pay")
	}
	// The savings must exceed the migration overhead it paid — the
	// planner internalizes the pause-cost.
	if plan.CarbonG+plan.Jobs[0].MigrationCarbonG >= noMig.CarbonG+plan.Jobs[0].MigrationCarbonG {
		t.Fatal("bookkeeping: totals must already include migration carbon")
	}
}
