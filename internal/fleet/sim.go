package fleet

import (
	"fmt"
	"sort"

	"perseus/internal/cluster"
	"perseus/internal/grid"
)

// SimJob couples a fleet job with the cluster description needed to
// simulate it: the allocator plans on the job's frontier table, and the
// simulator replays each allocated plan through cluster.Simulate to
// report realized time, energy, and power (including blocking energy
// the frontier model does not carry).
type SimJob struct {
	Job

	// Spec is the job's cluster description. Spec.Schedule must be the
	// schedule the Table was characterized on (table frequency plans
	// are indexed by schedule op id).
	Spec cluster.Spec
}

// EventKind enumerates scenario trace events.
type EventKind int

const (
	// EventArrive registers a new job (Event.Job).
	EventArrive EventKind = iota

	// EventDepart deregisters a job (Event.JobID).
	EventDepart

	// EventStraggler sets a job's straggler state: Factor > 1 is onset
	// (the job's pipeline 0 slows by Factor), Factor <= 1 is recovery.
	EventStraggler

	// EventSetCap changes the fleet power cap to Event.CapW. In a
	// multi-region scenario the cap is per datacenter — a facility
	// envelope is local power infrastructure — so each region's
	// allocator run (and the unplaced group) gets the full CapW unless
	// its own signal's interval cap overrides it; it does NOT bound the
	// summed draw across regions.
	EventSetCap

	// EventPlace places a job (Event.JobID) into a scenario region
	// (Event.Region). Placing an already-placed job into a different
	// region is a migration: the job pauses for the scenario's
	// migration downtime and is charged the transfer energy at the
	// destination region's rates.
	EventPlace
)

// String renders the kind for traces and tables.
func (k EventKind) String() string {
	switch k {
	case EventArrive:
		return "arrive"
	case EventDepart:
		return "depart"
	case EventStraggler:
		return "straggler"
	case EventSetCap:
		return "set-cap"
	case EventPlace:
		return "place"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one scenario trace entry.
type Event struct {
	// At is the event time in seconds from replay start.
	At float64

	// Kind selects the event.
	Kind EventKind

	// Job is the arriving job (EventArrive only).
	Job *SimJob

	// JobID targets an existing job (EventDepart, EventStraggler).
	JobID string

	// Factor is the straggler slowdown degree (EventStraggler): the
	// job's pipeline 0 runs Factor times slower; <= 1 is recovery.
	Factor float64

	// CapW is the new fleet power cap in watts (EventSetCap); 0 uncaps.
	CapW float64

	// Region names the destination scenario region (EventPlace).
	Region string
}

// SimRegion is one datacenter in a multi-region scenario: jobs placed
// there are allocated under its signal's interval caps and accounted
// at its rates.
type SimRegion struct {
	// Name labels the region; EventPlace targets it.
	Name string

	// Signal is the region's grid trace (cyclic beyond its horizon).
	Signal *grid.Signal

	// Truth optionally separates forecast from reality for this region,
	// exactly like Scenario.Truth: when set, Signal is what the
	// operator sees (driving caps and predicted accounting) while
	// realized carbon and cost accrue at Truth's rates.
	Truth *grid.Signal
}

// Scenario is a replayable multi-job trace.
type Scenario struct {
	// Horizon is the replay end time in seconds.
	Horizon float64

	// CapW is the initial fleet power cap (0 = uncapped).
	CapW float64

	// Events are the trace entries; Replay sorts them by time.
	Events []Event

	// Signal optionally drives the fleet from a grid trace
	// (internal/grid): Replay inserts a re-allocation boundary at every
	// signal interval edge, an interval's facility cap (CapW > 0)
	// overrides the event-set cap while it is in force, and every
	// segment's energy is accounted into carbon and cost at the
	// interval's rates. A trace shorter than the horizon repeats
	// cyclically (a 24 h trace describes every day).
	Signal *grid.Signal

	// Regions optionally makes the scenario multi-region: jobs are
	// placed (and migrated) across datacenters via EventPlace, each
	// region's signal drives its own interval caps and rates, and every
	// region's interval edges become re-allocation boundaries. Jobs not
	// yet placed run under the scenario Signal (or rate-free without
	// one). The power-budget allocator runs per region, and caps are
	// per datacenter: each region's jobs divide that region's interval
	// cap — or, absent one, the scenario/event cap, which therefore
	// bounds each datacenter individually rather than the fleet's
	// summed draw.
	Regions []SimRegion

	// MigrationDowntimeS is the checkpoint-transfer pause a migrating
	// job suffers on arrival; MigrationEnergyJ is the transfer energy,
	// charged at the destination's rates at the migration time.
	MigrationDowntimeS float64
	MigrationEnergyJ   float64

	// Truth optionally makes the replay forecast-driven: when set,
	// Signal plays the role of the operator's revealed/forecast trace —
	// it still drives re-allocation boundaries, interval cap overrides,
	// and the *predicted* carbon/cost accounting — while realized
	// carbon and cost accrue at Truth's rates. The simulator itself
	// never reads Truth for a decision; only the accounting does, so a
	// replay sees exactly what a forecast-fed operator would. Truth's
	// own interval edges also become segment boundaries, keeping every
	// segment within one set of realized rates.
	Truth *grid.Signal
}

// SegmentJob is one job's state during a segment.
type SegmentJob struct {
	// ID names the job.
	ID string

	// Point and PlannedTime are the allocator's operating point.
	Point       int
	PlannedTime float64

	// AllocPowerW is the model power at the point (frontier energy over
	// time, scaled by pipelines) — what the allocator budgeted.
	AllocPowerW float64

	// IterTime is the simulated end-to-end iteration time, including
	// the straggler's drag.
	IterTime float64

	// PowerW is the simulated average power over the job's GPUs,
	// including blocking energy.
	PowerW float64

	// Iterations and EnergyJ are the job's progress and energy over the
	// segment, extrapolated from the simulated steady-state iteration.
	Iterations float64
	EnergyJ    float64

	// CarbonG and CostUSD account the job's segment energy at the
	// scenario signal's rates (zero without a signal); in a
	// forecast-driven replay they are realized at the truth's rates
	// while PredCarbonG and PredCostUSD carry the forecast's view.
	CarbonG     float64
	CostUSD     float64
	PredCarbonG float64
	PredCostUSD float64

	// StragglerFactor is the active slowdown degree (1 = healthy).
	StragglerFactor float64

	// Region names the job's placement ("" before any placement or in
	// single-region scenarios); Migrating marks a checkpoint-transfer
	// pause segment (the job draws no power and makes no progress).
	Region    string
	Migrating bool
}

// Segment is one constant-state interval between scenario events.
type Segment struct {
	// Start and End bound the segment in seconds.
	Start, End float64

	// CapW is the cap in force (0 = uncapped); Feasible reports whether
	// the allocator met it.
	CapW     float64
	Feasible bool

	// AllocPowerW is the fleet's model power; PowerW the simulated one.
	AllocPowerW float64
	PowerW      float64

	// CarbonGPerKWh and PriceUSDPerKWh echo the signal interval in
	// force (zero without a signal); CarbonG and CostUSD account the
	// segment's simulated energy at those rates — at the truth's rates
	// in a forecast-driven replay, with PredCarbonG and PredCostUSD
	// carrying the forecast's view. A segment never spans a signal (or
	// truth) interval edge.
	CarbonGPerKWh  float64
	PriceUSDPerKWh float64
	CarbonG        float64
	CostUSD        float64
	PredCarbonG    float64
	PredCostUSD    float64

	// Jobs holds the active jobs' states in arrival order.
	Jobs []SegmentJob
}

// JobTotal accumulates one job's whole-scenario outcome.
type JobTotal struct {
	ID          string
	ActiveS     float64
	Iterations  float64
	EnergyJ     float64
	CarbonG     float64
	CostUSD     float64
	PredCarbonG float64
	PredCostUSD float64
}

// Series is the replayed scenario: per-segment fleet state plus
// per-job and fleet totals.
type Series struct {
	Segments []Segment

	// Totals lists per-job outcomes in first-arrival order.
	Totals []JobTotal

	// EnergyJ is the fleet's total simulated energy.
	EnergyJ float64

	// CarbonG and CostUSD are the fleet's total accounted emissions and
	// electricity cost under the scenario signal (zero without one) —
	// realized at the truth's rates in a forecast-driven replay, with
	// PredCarbonG and PredCostUSD totaling what the forecast predicted.
	CarbonG     float64
	CostUSD     float64
	PredCarbonG float64
	PredCostUSD float64

	// PeakPowerW is the maximum simulated fleet power over segments.
	PeakPowerW float64
}

// Replay runs the event-driven multi-job simulation: it applies the
// scenario's events in time order — job arrival and departure,
// straggler onset and recovery, cap changes, placements — re-running
// the power-budget allocator at every state change, and simulates each
// constant-state segment with cluster.Simulate at the allocated
// operating points. A scenario Signal adds signal-driven state changes
// on top: interval edges become segment boundaries, interval caps
// override the event-set cap, and each segment's energy is accounted
// into carbon and cost at the interval's rates. Scenario Regions make
// the replay multi-region: every region's interval edges become
// boundaries, the allocator runs per region under each region's cap,
// jobs are accounted at their region's rates, and migrations insert a
// checkpoint-transfer pause (plus transfer energy at the destination's
// rates).
func Replay(sc Scenario) (*Series, error) {
	if sc.Horizon <= 0 {
		return nil, fmt.Errorf("fleet: scenario horizon must be positive, got %v", sc.Horizon)
	}
	if sc.Signal != nil {
		if err := sc.Signal.Validate(); err != nil {
			return nil, err
		}
	}
	if sc.Truth != nil {
		if sc.Signal == nil {
			return nil, fmt.Errorf("fleet: scenario truth needs a signal (the forecast the replay sees)")
		}
		if err := sc.Truth.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: scenario truth: %w", err)
		}
	}
	if !(sc.MigrationDowntimeS >= 0) || !(sc.MigrationEnergyJ >= 0) {
		return nil, fmt.Errorf("fleet: migration cost must be non-negative, got %v s / %v J",
			sc.MigrationDowntimeS, sc.MigrationEnergyJ)
	}
	regionSigs := map[string]*grid.Signal{}
	regionTruths := map[string]*grid.Signal{}
	var regionOrder []string
	for _, r := range sc.Regions {
		if r.Name == "" {
			return nil, fmt.Errorf("fleet: scenario region needs a name")
		}
		if _, dup := regionSigs[r.Name]; dup {
			return nil, fmt.Errorf("fleet: duplicate scenario region %q", r.Name)
		}
		if r.Signal == nil {
			return nil, fmt.Errorf("fleet: scenario region %q needs a signal", r.Name)
		}
		if err := r.Signal.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: scenario region %q: %w", r.Name, err)
		}
		if r.Truth != nil {
			if err := r.Truth.Validate(); err != nil {
				return nil, fmt.Errorf("fleet: scenario region %q truth: %w", r.Name, err)
			}
			regionTruths[r.Name] = r.Truth
		}
		regionSigs[r.Name] = r.Signal
		regionOrder = append(regionOrder, r.Name)
	}
	events := append([]Event(nil), sc.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	for _, e := range events {
		if e.At < 0 || e.At > sc.Horizon {
			return nil, fmt.Errorf("fleet: event %s at %v outside [0, %v]", e.Kind, e.At, sc.Horizon)
		}
	}

	f := New()
	if err := f.SetCap(sc.CapW); err != nil {
		return nil, err
	}
	evCap := sc.CapW // the event-set cap, under any signal override
	sims := map[string]*SimJob{}
	factors := map[string]float64{}
	totals := map[string]*JobTotal{}
	place := map[string]string{}     // job id -> region name
	migUntil := map[string]float64{} // job id -> migration pause end
	var order []string               // first-arrival order, for stable totals
	series := &Series{}

	apply := func(e Event) error {
		switch e.Kind {
		case EventArrive:
			if e.Job == nil {
				return fmt.Errorf("fleet: arrival event at %v has no job", e.At)
			}
			if err := f.Add(e.Job.Job); err != nil {
				return err
			}
			id := e.Job.ID
			sims[id] = e.Job
			factors[id] = 1
			if _, ok := totals[id]; !ok {
				totals[id] = &JobTotal{ID: id}
				order = append(order, id)
			}
		case EventDepart:
			if _, ok := sims[e.JobID]; !ok {
				return fmt.Errorf("fleet: departure of unknown job %s at %v", e.JobID, e.At)
			}
			f.Remove(e.JobID)
			delete(sims, e.JobID)
			delete(factors, e.JobID)
			delete(place, e.JobID)
			delete(migUntil, e.JobID)
		case EventStraggler:
			sj, ok := sims[e.JobID]
			if !ok {
				return fmt.Errorf("fleet: straggler event for unknown job %s at %v", e.JobID, e.At)
			}
			if e.Factor <= 1 { // recovery
				factors[e.JobID] = 1
				return f.SetStraggler(e.JobID, 0)
			}
			factors[e.JobID] = e.Factor
			return f.SetStraggler(e.JobID, sj.Table.Tmin()*e.Factor)
		case EventSetCap:
			if err := f.SetCap(e.CapW); err != nil {
				return err
			}
			evCap = e.CapW
		case EventPlace:
			if len(sc.Regions) == 0 {
				return fmt.Errorf("fleet: placement event at %v in a scenario without regions", e.At)
			}
			if _, ok := sims[e.JobID]; !ok {
				return fmt.Errorf("fleet: placement of unknown job %s at %v", e.JobID, e.At)
			}
			sig, ok := regionSigs[e.Region]
			if !ok {
				return fmt.Errorf("fleet: placement of job %s into unknown region %q at %v", e.JobID, e.Region, e.At)
			}
			prev, had := place[e.JobID]
			if had && prev == e.Region {
				return nil // re-placing in place is a no-op
			}
			place[e.JobID] = e.Region
			if !had {
				return nil // initial placement is free
			}
			// Migration: pause for the checkpoint transfer and charge
			// the transfer energy at the destination's rates — realized
			// at the truth's when the region is forecast-driven, with
			// the forecast's view accounted as predicted.
			if sc.MigrationDowntimeS > 0 {
				migUntil[e.JobID] = e.At + sc.MigrationDowntimeS
			}
			if sc.MigrationEnergyJ > 0 {
				rateOf := func(s *grid.Signal) (carbon, price float64) {
					if s == nil {
						return 0, 0
					}
					if iv, ok := s.AtCyclic(e.At); ok {
						return iv.CarbonGPerKWh, iv.PriceUSDPerKWh
					}
					return 0, 0
				}
				carbon, price := rateOf(sig)
				var predC, predUSD float64
				if truth, ok := regionTruths[e.Region]; ok {
					// Realized at truth, predicted at the forecast signal.
					predC = sc.MigrationEnergyJ / grid.JoulesPerKWh * carbon
					predUSD = sc.MigrationEnergyJ / grid.JoulesPerKWh * price
					carbon, price = rateOf(truth)
				}
				c := sc.MigrationEnergyJ / grid.JoulesPerKWh * carbon
				usd := sc.MigrationEnergyJ / grid.JoulesPerKWh * price
				tot := totals[e.JobID]
				tot.EnergyJ += sc.MigrationEnergyJ
				tot.CarbonG += c
				tot.CostUSD += usd
				tot.PredCarbonG += predC
				tot.PredCostUSD += predUSD
				series.EnergyJ += sc.MigrationEnergyJ
				series.CarbonG += c
				series.CostUSD += usd
				series.PredCarbonG += predC
				series.PredCostUSD += predUSD
			}
		default:
			return fmt.Errorf("fleet: unknown event kind %d at %v", int(e.Kind), e.At)
		}
		return nil
	}

	// Signal interval edges — of the scenario signal, the truth traces,
	// and every region's — are re-allocation boundaries too, so every
	// segment lies within one interval and one set of rates per region
	// under both the forecast and the truth.
	sigs := []*grid.Signal{sc.Signal, sc.Truth}
	for _, r := range sc.Regions {
		sigs = append(sigs, r.Signal, r.Truth)
	}
	bounds := grid.MergedBoundaries(sigs, sc.Horizon)
	bi := 0

	i := 0
	now := 0.0
	for {
		for i < len(events) && events[i].At <= now {
			if err := apply(events[i]); err != nil {
				return nil, err
			}
			i++
		}
		for bi < len(bounds) && bounds[bi] <= now {
			bi++
		}
		if now >= sc.Horizon {
			break
		}
		next := sc.Horizon
		if i < len(events) && events[i].At < next {
			next = events[i].At
		}
		if bi < len(bounds) && bounds[bi] < next {
			next = bounds[bi]
		}
		// A migration pause ending is a state change too.
		for _, mu := range migUntil {
			if mu > now && mu < next {
				next = mu
			}
		}
		if next > now {
			var seg Segment
			var err error
			if len(sc.Regions) > 0 {
				seg, err = simulateRegionsSegment(f, sims, factors, place, migUntil,
					regionOrder, regionSigs, regionTruths, sc.Signal, sc.Truth, evCap, now, next)
			} else {
				seg, err = simulateSignalSegment(f, sims, factors, sc.Signal, sc.Truth, evCap, now, next)
			}
			if err != nil {
				return nil, err
			}
			for k := range seg.Jobs {
				sjob := &seg.Jobs[k]
				tot := totals[sjob.ID]
				tot.ActiveS += next - now
				tot.Iterations += sjob.Iterations
				tot.EnergyJ += sjob.EnergyJ
				tot.CarbonG += sjob.CarbonG
				tot.CostUSD += sjob.CostUSD
				tot.PredCarbonG += sjob.PredCarbonG
				tot.PredCostUSD += sjob.PredCostUSD
				seg.CarbonG += sjob.CarbonG
				seg.CostUSD += sjob.CostUSD
				seg.PredCarbonG += sjob.PredCarbonG
				seg.PredCostUSD += sjob.PredCostUSD
			}
			series.EnergyJ += seg.PowerW * (next - now)
			series.CarbonG += seg.CarbonG
			series.CostUSD += seg.CostUSD
			series.PredCarbonG += seg.PredCarbonG
			series.PredCostUSD += seg.PredCostUSD
			if seg.PowerW > series.PeakPowerW {
				series.PeakPowerW = seg.PowerW
			}
			series.Segments = append(series.Segments, seg)
		}
		now = next
	}
	for _, id := range order {
		series.Totals = append(series.Totals, *totals[id])
	}
	return series, nil
}

// simulateJob simulates one allocated job's steady state over dur
// seconds.
func simulateJob(sj *SimJob, ja JobAlloc, factor, dur float64) (SegmentJob, error) {
	plan := cluster.Plan(sj.Table.Points[ja.Point].Freqs)
	var res cluster.Result
	var err error
	if factor > 1 {
		// The straggler pipeline keeps the fastest plan — it is slow
		// because the hardware throttled it, not by schedule — while
		// the other replicas deploy the allocated T_opt plan (paper
		// §3.2 step 5).
		fastest := cluster.Plan(sj.Table.Points[0].Freqs)
		res, err = cluster.SimulateMulti(sj.Spec, func(p int) cluster.Plan {
			if p == 0 {
				return fastest
			}
			return plan
		}, []cluster.Straggler{{Pipeline: 0, Factor: factor}})
	} else {
		res, err = cluster.Simulate(sj.Spec, plan, nil)
	}
	if err != nil {
		return SegmentJob{}, fmt.Errorf("fleet: simulating job %s: %w", ja.ID, err)
	}
	powerW := res.TotalPowerW()
	return SegmentJob{
		ID:              ja.ID,
		Point:           ja.Point,
		PlannedTime:     ja.Time,
		AllocPowerW:     ja.PowerW,
		IterTime:        res.IterTime,
		PowerW:          powerW,
		Iterations:      dur / res.IterTime,
		EnergyJ:         powerW * dur,
		StragglerFactor: factor,
	}, nil
}

// segmentRates resolves a segment's accounting rates: the decision
// signal's rates (what the operator sees), and the realized ones —
// the truth's when the replay is forecast-driven, the signal's own
// otherwise. pred reports whether a separate predicted account exists.
func segmentRates(sig, truth *grid.Signal, start float64) (carbonRate, priceRate, predCarbonRate, predPriceRate float64, pred bool) {
	if sig != nil {
		if iv, ok := sig.AtCyclic(start); ok {
			carbonRate, priceRate = iv.CarbonGPerKWh, iv.PriceUSDPerKWh
		}
	}
	if truth == nil {
		return carbonRate, priceRate, 0, 0, false
	}
	predCarbonRate, predPriceRate = carbonRate, priceRate
	carbonRate, priceRate = 0, 0
	if iv, ok := truth.AtCyclic(start); ok {
		carbonRate, priceRate = iv.CarbonGPerKWh, iv.PriceUSDPerKWh
	}
	return carbonRate, priceRate, predCarbonRate, predPriceRate, true
}

// simulateSignalSegment is the single-region path: one fleet-wide
// allocation under the scenario signal's cap override, per-job energy
// accounted at the signal's rates (realized at the truth's in a
// forecast-driven replay).
func simulateSignalSegment(f *Fleet, sims map[string]*SimJob, factors map[string]float64, sig, truth *grid.Signal, evCap, start, end float64) (Segment, error) {
	if sig != nil {
		// The signal's interval cap, while in force, overrides the
		// event-set cap.
		capW := evCap
		if iv, ok := sig.AtCyclic(start); ok {
			if iv.CapW > 0 {
				capW = iv.CapW
			}
		}
		if err := f.SetCap(capW); err != nil {
			return Segment{}, err
		}
	}
	carbonRate, priceRate, predCarbon, predPrice, pred := segmentRates(sig, truth, start)
	alloc := f.Allocate()
	seg := Segment{
		Start:       start,
		End:         end,
		CapW:        alloc.CapW,
		Feasible:    alloc.Feasible,
		AllocPowerW: alloc.PowerW,
		// The echoed rates are the operator's view (the decision
		// signal's); realized accounting may differ under a truth.
		CarbonGPerKWh:  carbonRate,
		PriceUSDPerKWh: priceRate,
	}
	if pred {
		seg.CarbonGPerKWh, seg.PriceUSDPerKWh = predCarbon, predPrice
	}
	dur := end - start
	for _, ja := range alloc.Jobs {
		sjob, err := simulateJob(sims[ja.ID], ja, factors[ja.ID], dur)
		if err != nil {
			return Segment{}, err
		}
		sjob.CarbonG = sjob.EnergyJ / grid.JoulesPerKWh * carbonRate
		sjob.CostUSD = sjob.EnergyJ / grid.JoulesPerKWh * priceRate
		if pred {
			sjob.PredCarbonG = sjob.EnergyJ / grid.JoulesPerKWh * predCarbon
			sjob.PredCostUSD = sjob.EnergyJ / grid.JoulesPerKWh * predPrice
		}
		seg.PowerW += sjob.PowerW
		seg.Jobs = append(seg.Jobs, sjob)
	}
	return seg, nil
}

// simulateRegionsSegment is the multi-region path: the allocator runs
// once per region over the jobs placed there (each region's interval
// cap, or the event-set cap, divides among them), unplaced jobs run
// under the scenario signal, and migrating jobs pause at zero power.
func simulateRegionsSegment(f *Fleet, sims map[string]*SimJob, factors map[string]float64, place map[string]string, migUntil map[string]float64, regionOrder []string, regionSigs, regionTruths map[string]*grid.Signal, global, globalTruth *grid.Signal, evCap, start, end float64) (Segment, error) {
	seg := Segment{Start: start, End: end, CapW: evCap, Feasible: true}
	dur := end - start
	snap := f.Snapshot()

	groups := map[string][]Job{}
	migrating := map[string]bool{}
	for _, j := range snap {
		if mu, ok := migUntil[j.ID]; ok && start < mu {
			migrating[j.ID] = true
			continue
		}
		groups[place[j.ID]] = append(groups[place[j.ID]], j)
	}

	jobsOut := map[string]SegmentJob{}
	for _, rname := range append([]string{""}, regionOrder...) {
		grp := groups[rname]
		if len(grp) == 0 {
			continue
		}
		sig, truth := global, globalTruth
		if rname != "" {
			sig, truth = regionSigs[rname], regionTruths[rname]
		}
		capW := evCap
		if sig != nil {
			if iv, ok := sig.AtCyclic(start); ok {
				if iv.CapW > 0 {
					capW = iv.CapW
				}
			}
		}
		carbonRate, priceRate, predCarbon, predPrice, pred := segmentRates(sig, truth, start)
		alloc := Allocate(grp, capW)
		if !alloc.Feasible {
			seg.Feasible = false
		}
		seg.AllocPowerW += alloc.PowerW
		for _, ja := range alloc.Jobs {
			sjob, err := simulateJob(sims[ja.ID], ja, factors[ja.ID], dur)
			if err != nil {
				return Segment{}, err
			}
			sjob.Region = rname
			sjob.CarbonG = sjob.EnergyJ / grid.JoulesPerKWh * carbonRate
			sjob.CostUSD = sjob.EnergyJ / grid.JoulesPerKWh * priceRate
			if pred {
				sjob.PredCarbonG = sjob.EnergyJ / grid.JoulesPerKWh * predCarbon
				sjob.PredCostUSD = sjob.EnergyJ / grid.JoulesPerKWh * predPrice
			}
			seg.PowerW += sjob.PowerW
			jobsOut[ja.ID] = sjob
		}
	}
	for id := range migrating {
		jobsOut[id] = SegmentJob{
			ID: id, Region: place[id], Migrating: true,
			StragglerFactor: factors[id],
		}
	}
	// Emit in arrival order for stable output.
	for _, j := range snap {
		if sjob, ok := jobsOut[j.ID]; ok {
			seg.Jobs = append(seg.Jobs, sjob)
		}
	}
	return seg, nil
}
