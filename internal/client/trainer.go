package client

import (
	"fmt"

	"perseus/internal/dag"
	"perseus/internal/gpu"
	"perseus/internal/profile"
	"perseus/internal/sched"
)

// Trainer is the simulated training engine the Perseus client integrates
// with (paper Listing 1): one device per pipeline stage executing the
// schedule's instruction stream, each computation wrapped by
// controller.SetSpeed and profiler Begin/End.
type Trainer struct {
	Schedule *sched.Schedule
	GPU      *gpu.Model

	// Refs holds each virtual stage's forward reference time at maximum
	// frequency; backward cost is Refs times BwdFactor.
	Refs      []float64
	BwdFactor float64

	Devices     []*gpu.Device
	Profilers   []*Profiler
	Controllers []*Controller

	graph *dag.Graph
	plan  []gpu.Frequency // per-op deployed plan; nil = locked frequency
}

// NewTrainer assembles a trainer with one device, profiler, and
// asynchronous frequency controller per pipeline stage.
func NewTrainer(s *sched.Schedule, g *gpu.Model, refs []float64, bwdFactor float64) (*Trainer, error) {
	if len(refs) != s.VirtualStages() {
		return nil, fmt.Errorf("client: %d stage references for %d virtual stages", len(refs), s.VirtualStages())
	}
	graph, err := dag.Build(s, func(op sched.Op) int64 { return 1 })
	if err != nil {
		return nil, err
	}
	t := &Trainer{Schedule: s, GPU: g, Refs: refs, BwdFactor: bwdFactor, graph: graph}
	for st := 0; st < s.Stages; st++ {
		dev := gpu.NewDevice(g, fmt.Sprintf("s%d", st))
		t.Devices = append(t.Devices, dev)
		t.Profilers = append(t.Profilers, NewProfiler(dev))
		t.Controllers = append(t.Controllers, NewController(dev))
	}
	return t, nil
}

// Close stops the frequency controllers.
func (t *Trainer) Close() {
	for _, c := range t.Controllers {
		c.Close()
	}
}

// Deploy installs a per-op frequency plan (from the server's energy
// schedule). A nil plan reverts to locked-frequency execution.
func (t *Trainer) Deploy(freqs []int) error {
	if freqs == nil {
		t.plan = nil
		return nil
	}
	if len(freqs) != len(t.Schedule.Ops) {
		return fmt.Errorf("client: plan has %d entries for %d ops", len(freqs), len(t.Schedule.Ops))
	}
	plan := make([]gpu.Frequency, len(freqs))
	for i, f := range freqs {
		plan[i] = gpu.Frequency(f)
	}
	t.plan = plan
	return nil
}

// LockFrequency pins every device to one frequency (profiling phase).
func (t *Trainer) LockFrequency(f gpu.Frequency) {
	for st, c := range t.Controllers {
		c.SetSpeed(f)
		c.Sync()
		_ = st
	}
	t.plan = nil
}

// opCost returns an op's reference time at maximum frequency and its
// memory-bound fraction.
func (t *Trainer) opCost(op sched.Op) (ref, memBound float64) {
	switch op.Kind {
	case sched.Backward:
		return t.Refs[op.Virtual] * t.BwdFactor, t.GPU.MemBoundBwd
	default: // Forward and Recompute replay the forward
		return t.Refs[op.Virtual], t.GPU.MemBoundFwd
	}
}

// RunIteration executes one training iteration: every instruction runs on
// its stage's device in dependency order, wrapped with the client APIs as
// in paper Listing 1, and profilers record (time, energy) measurements.
// It returns the iteration time (the DAG makespan under realized
// durations).
func (t *Trainer) RunIteration() (float64, error) {
	durs := make([]float64, len(t.Schedule.Ops))
	for _, v := range t.graph.Topo() {
		id := int(v)
		if id >= len(t.Schedule.Ops) {
			continue
		}
		op := t.Schedule.Ops[id]
		dev := t.Devices[op.Stage]
		ctl := t.Controllers[op.Stage]
		prof := t.Profilers[op.Stage]

		if t.plan != nil && t.plan[id] > 0 {
			ctl.SetSpeed(t.plan[id]) // controller.set_speed(type)
		}
		ctl.Sync()
		if err := prof.Begin(); err != nil { // profiler.begin(type)
			return 0, err
		}
		ref, mem := t.opCost(op)
		sec, _ := dev.Run(ref, mem)
		prof.Advance(sec)
		if err := prof.End(op.Virtual, op.Kind); err != nil { // profiler.end(type)
			return 0, err
		}
		durs[id] = sec
	}
	// Iteration time: longest path with realized durations.
	est := make([]float64, len(t.graph.Dur))
	for _, v := range t.graph.Topo() {
		var dv float64
		if int(v) < len(durs) {
			dv = durs[v]
		}
		for _, w := range t.graph.Succ[v] {
			if tt := est[v] + dv; tt > est[w] {
				est[w] = tt
			}
		}
	}
	return est[t.graph.Sink], nil
}

// ProfileSweep runs the in-vivo profiling phase (paper §5): each supported
// frequency from highest to lowest for itersPerFreq iterations, stopping
// once every computation type has become strictly suboptimal — more time
// and more blocking-adjusted energy than a faster frequency — for two
// consecutive frequencies. It returns all collected measurements.
func (t *Trainer) ProfileSweep(itersPerFreq int) ([]profile.Measurement, error) {
	if itersPerFreq <= 0 {
		itersPerFreq = 5
	}
	pb := profile.MeasurePBlocking(t.GPU)
	type best struct{ time, adj float64 }
	bests := map[profile.TypeKey]best{}
	strikes := 0
	var all []profile.Measurement
	for _, f := range t.GPU.Frequencies() {
		t.LockFrequency(f)
		for _, p := range t.Profilers {
			p.Records = p.Records[:0]
		}
		for it := 0; it < itersPerFreq; it++ {
			if _, err := t.RunIteration(); err != nil {
				return nil, err
			}
		}
		allWorse := true
		for _, p := range t.Profilers {
			for _, m := range p.Records {
				all = append(all, m)
				key := profile.TypeKey{Virtual: m.Virtual, Kind: m.Kind}
				adj := m.Energy - pb*m.Time
				b, seen := bests[key]
				if !seen || adj < b.adj {
					bests[key] = best{time: m.Time, adj: adj}
				}
				if !seen || m.Time <= b.time || adj <= b.adj {
					allWorse = false
				}
			}
		}
		if allWorse {
			strikes++
			if strikes >= 2 {
				break
			}
		} else {
			strikes = 0
		}
	}
	return all, nil
}

// PBlocking measures the blocking power, mirroring the two-GPU procedure
// of paper §5.
func (t *Trainer) PBlocking() float64 { return profile.MeasurePBlocking(t.GPU) }
