package experiments

import (
	"fmt"

	"perseus/internal/frontier"
	"perseus/internal/grid"
)

// GridStrategy is one row of a grid comparison: a named way of placing
// the same work against the same signal.
type GridStrategy struct {
	Name string
	Plan *grid.Plan
}

// GridComparison plans the bundled temporal-shifting comparison: the
// grid-aware carbon- and cost-optimal plans against the two
// signal-blind baselines — always-T_min (sprint, then stop) and static
// min-energy (run every iteration at T*) — all completing the same
// target iterations under the same deadline.
func GridComparison(lt *frontier.LookupTable, sig *grid.Signal, target, deadline float64) ([]GridStrategy, error) {
	mk := func(obj grid.Objective) grid.Options {
		return grid.Options{Target: target, DeadlineS: deadline, Objective: obj}
	}
	carbonPlan, err := grid.Optimize(lt, sig, mk(grid.ObjectiveCarbon))
	if err != nil {
		return nil, fmt.Errorf("experiments: carbon plan: %w", err)
	}
	costPlan, err := grid.Optimize(lt, sig, mk(grid.ObjectiveCost))
	if err != nil {
		return nil, fmt.Errorf("experiments: cost plan: %w", err)
	}
	alwaysFast, err := grid.Fixed(lt, 0, sig, mk(grid.ObjectiveCarbon))
	if err != nil {
		return nil, fmt.Errorf("experiments: always-Tmin baseline: %w", err)
	}
	minEnergy, err := grid.Fixed(lt, len(lt.Points)-1, sig, mk(grid.ObjectiveCarbon))
	if err != nil {
		return nil, fmt.Errorf("experiments: static min-energy baseline: %w", err)
	}
	return []GridStrategy{
		{"always-Tmin", alwaysFast},
		{"static min-energy", minEnergy},
		{"grid-aware (carbon)", carbonPlan},
		{"grid-aware (cost)", costPlan},
	}, nil
}

// GridComparisonTable renders the strategies side by side, with carbon
// savings relative to the always-T_min baseline (the first strategy).
func GridComparisonTable(sig *grid.Signal, strategies []GridStrategy) *Table {
	t := &Table{
		Title: fmt.Sprintf("Temporal shifting on %s (equal iterations completed)", sig.Name),
		Header: []string{"Strategy", "Iters", "Finish (h)", "Energy (kWh)",
			"Carbon (kg)", "Cost ($)", "Carbon vs fast (%)"},
	}
	var baseCarbon float64
	for i, st := range strategies {
		p := st.Plan
		if i == 0 {
			baseCarbon = p.CarbonG
		}
		finish := "-"
		if p.FinishS >= 0 {
			finish = fmt.Sprintf("%.2f", p.FinishS/3600)
		}
		save := "-"
		if baseCarbon > 0 {
			save = fmt.Sprintf("%+.1f", 100*(p.CarbonG-baseCarbon)/baseCarbon)
		}
		row := []string{
			st.Name,
			fmt.Sprintf("%.0f", p.Iterations),
			finish,
			fmt.Sprintf("%.2f", p.EnergyJ/grid.JoulesPerKWh),
			fmt.Sprintf("%.3f", p.CarbonG/1e3),
			fmt.Sprintf("%.2f", p.CostUSD),
			save,
		}
		if !p.Feasible {
			row[0] += " (infeasible)"
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"All strategies complete the same iterations; baselines run one fixed frontier point from t=0 and stop.")
	return t
}

// GridPlanTable renders a temporal plan interval by interval: when the
// job runs, at which operating points, and what each hour costs.
func GridPlanTable(lt *frontier.LookupTable, p *grid.Plan) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Grid-aware temporal plan (%s objective)", p.Objective),
		Header: []string{"t (h)", "gCO2/kWh", "$/kWh", "Operating point", "Run (min)", "Iters", "Carbon (g)"},
	}
	for _, ip := range p.Intervals {
		var run float64
		point := "idle"
		if len(ip.Slices) > 0 {
			point = ""
			for i, sl := range ip.Slices {
				if i > 0 {
					point += " + "
				}
				point += fmt.Sprintf("%.0f%% of T=%.3fs", 100*sl.Seconds/(ip.EndS-ip.StartS), lt.PointTime(sl.Point))
				run += sl.Seconds
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.0f-%.0f", ip.StartS/3600, ip.EndS/3600),
			fmt.Sprintf("%.0f", ip.CarbonGPerKWh),
			fmt.Sprintf("%.3f", ip.PriceUSDPerKWh),
			point,
			fmt.Sprintf("%.0f", run/60),
			fmt.Sprintf("%.0f", ip.Iterations),
			fmt.Sprintf("%.0f", ip.CarbonG),
		})
	}
	finish := "never (infeasible)"
	if p.FinishS >= 0 {
		finish = fmt.Sprintf("%.1fh", p.FinishS/3600)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"target %.0f iterations by t=%.1fh; plan finishes at %s",
		p.Target, p.DeadlineS/3600, finish))
	return t
}
