package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"perseus/internal/gpu"
)

// quick builds a system at test fidelity.
func quick(t *testing.T, cfg WorkloadConfig, g *gpu.Model) *System {
	t.Helper()
	sys, err := BuildSystem(cfg, g, Quick)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not a number", row, col, tab.Rows[row][col])
	}
	return v
}

func TestTable1Renders(t *testing.T) {
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 16 {
		t.Fatalf("%d rows, want 16", len(tab.Rows))
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "gpt3-175b") {
		t.Error("rendered table missing gpt3-175b")
	}
	// Every ratio must be >= 1.
	for r := range tab.Rows {
		for _, c := range []int{2, 3} {
			if v := cell(t, tab, r, c); v < 1 {
				t.Errorf("row %d: ratio %v < 1", r, v)
			}
		}
	}
}

func TestTable7PartitionsWellFormed(t *testing.T) {
	tab, err := Table7()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for _, c := range row[1:] {
			if !strings.HasPrefix(c, "[0 ") {
				t.Errorf("%s: partition %q does not start at 0", row[0], c)
			}
		}
	}
}

// TestTable3Shape pins the paper's qualitative claims at reduced scale:
// Perseus saves energy on every workload with small slowdown, beats
// EnvPipe, and A40 yields deeper savings than A100 (§6.2).
func TestTable3Shape(t *testing.T) {
	cfgs := []WorkloadConfig{A100Workloads()[0], A100Workloads()[3]} // GPT-3, Bloom
	a100, err := Table3(gpu.A100PCIe, cfgs, Quick)
	if err != nil {
		t.Fatal(err)
	}
	cfgs40 := []WorkloadConfig{A40Workloads()[0], A40Workloads()[3]}
	a40, err := Table3(gpu.A40, cfgs40, Quick)
	if err != nil {
		t.Fatal(err)
	}
	for r := range a100.Rows {
		perseus, envpipe := cell(t, a100, r, 1), cell(t, a100, r, 2)
		slowdown := cell(t, a100, r, 3)
		if perseus < 5 || perseus > 25 {
			t.Errorf("A100 row %d: Perseus savings %v%% outside the paper's regime", r, perseus)
		}
		if perseus <= envpipe {
			t.Errorf("A100 row %d: Perseus %v%% should beat EnvPipe %v%%", r, perseus, envpipe)
		}
		if slowdown > 3 {
			t.Errorf("A100 row %d: Perseus slowdown %v%% not negligible", r, slowdown)
		}
	}
	for r := range a40.Rows {
		p100, p40 := cell(t, a100, r, 1), cell(t, a40, r, 1)
		if p40 <= p100 {
			t.Errorf("row %d: A40 savings %v%% should exceed A100's %v%% (§6.2)", r, p40, p100)
		}
	}
}

// TestTable4Shape checks the straggler sweep: savings rise from 1.05
// toward T* and decline afterwards, and Perseus dominates EnvPipe
// throughout (paper §6.2.2).
func TestTable4Shape(t *testing.T) {
	tab, err := Table4(gpu.A100PCIe, A100Workloads()[:1], Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows, want 2 (Perseus + EnvPipe)", len(tab.Rows))
	}
	var perseus, envpipe []float64
	for c := 2; c < 2+len(StragglerSlowdowns); c++ {
		perseus = append(perseus, cell(t, tab, 0, c))
		envpipe = append(envpipe, cell(t, tab, 1, c))
	}
	for i := range perseus {
		if perseus[i] <= envpipe[i] {
			t.Errorf("slowdown %v: Perseus %v <= EnvPipe %v", StragglerSlowdowns[i], perseus[i], envpipe[i])
		}
	}
	// Rise then decline: the max must not be at the extremes' minimum,
	// and past the peak the series must decline.
	peak := 0
	for i, v := range perseus {
		if v > perseus[peak] {
			peak = i
		}
	}
	if peak == len(perseus)-1 {
		t.Errorf("savings still rising at slowdown 1.5: %v", perseus)
	}
	for i := peak + 1; i < len(perseus); i++ {
		if perseus[i] > perseus[i-1]+0.2 {
			t.Errorf("savings not declining past the peak: %v", perseus)
		}
	}
	// EnvPipe declines monotonically: no straggler awareness.
	for i := 1; i < len(envpipe); i++ {
		if envpipe[i] > envpipe[i-1]+0.2 {
			t.Errorf("EnvPipe savings rose with slowdown: %v", envpipe)
		}
	}
}

// TestPotentialSavingsCalibration checks §2.4's headline numbers at
// reduced scale: A100 around 16%, A40 around 27%, A40 > A100.
func TestPotentialSavingsCalibration(t *testing.T) {
	a100, err := PotentialSavings(gpu.A100PCIe, A100Workloads()[:2], Quick)
	if err != nil {
		t.Fatal(err)
	}
	a40, err := PotentialSavings(gpu.A40, A40Workloads()[:2], Quick)
	if err != nil {
		t.Fatal(err)
	}
	for r := range a100.Rows {
		v100, v40 := cell(t, a100, r, 1), cell(t, a40, r, 1)
		if v100 < 10 || v100 > 22 {
			t.Errorf("A100 potential %v%% outside [10, 22] (paper: 16%%)", v100)
		}
		if v40 < 20 || v40 > 34 {
			t.Errorf("A40 potential %v%% outside [20, 34] (paper: 27%%)", v40)
		}
		if v40 <= v100 {
			t.Errorf("A40 potential %v%% should exceed A100's %v%%", v40, v100)
		}
	}
}

// TestFrontierComparisonDominates reproduces Figure 9's key claim:
// Perseus Pareto-dominates both Zeus-derived baselines.
func TestFrontierComparisonDominates(t *testing.T) {
	sys := quick(t, A100Workloads()[0], gpu.A100PCIe)
	series, err := FrontierComparison(sys, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("%d series, want 3", len(series))
	}
	per := series[0]
	for _, base := range series[1:] {
		if len(base.Time) < 3 {
			t.Fatalf("%s has only %d points", base.Name, len(base.Time))
		}
		if !ParetoDominates(per, base, 0.01) {
			t.Errorf("Perseus does not Pareto-dominate %s", base.Name)
		}
		if ParetoDominates(base, per, -0.05) {
			t.Errorf("%s unexpectedly dominates Perseus with margin", base.Name)
		}
	}
}

// TestFrontierComparison3D exercises the 3D-parallelism configuration of
// Figure 9c (paper §4.4: profile one GPU per stage and replicate).
func TestFrontierComparison3D(t *testing.T) {
	sys := quick(t, ThreeDWorkload(), gpu.A40)
	if sys.Spec.TensorParallel != 2 || sys.Spec.DataParallel != 2 {
		t.Fatalf("3D spec wrong: %+v", sys.Spec)
	}
	series, err := FrontierComparison(sys, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !ParetoDominates(series[0], series[1], 0.01) || !ParetoDominates(series[0], series[2], 0.01) {
		t.Error("Perseus must dominate both baselines under 3D parallelism")
	}
	if sys.Spec.GPUs() != 2*2*4 {
		t.Errorf("GPUs() = %d, want 16", sys.Spec.GPUs())
	}
}

// TestTable6Shape checks the emulation trend on a reduced grid: intrinsic
// savings decrease as microbatches increase (paper §6.3), pinned on Bloom
// whose decay the paper also reports.
func TestTable6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation is slow")
	}
	var prev float64 = 100
	for _, mb := range []int{12, 24, 48} {
		cfg := emulationConfig("Bloom 176B", "bloom-176b", mb, 1)
		sys, err := BuildSystem(cfg, gpu.A100SXM, Scale{TargetSteps: 250})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.SimulatePlan(sys.PerseusPlan(0))
		if err != nil {
			t.Fatal(err)
		}
		sav := 100 * (1 - res.Energy/sys.Base.Energy)
		if sav >= prev {
			t.Errorf("savings %v%% at %d microbatches should be below %v%%", sav, mb, prev)
		}
		if res.IterTime > sys.Base.IterTime*1.02 {
			t.Errorf("mb=%d: hidden slowdown %.2f%%", mb, 100*(res.IterTime/sys.Base.IterTime-1))
		}
		prev = sav
	}
}

// TestFigure8Shape checks the straggler sweep shape in emulation: savings
// peak near T*/T and wane beyond (paper §6.3, Figure 8).
func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation is slow")
	}
	cfg := emulationConfig("Bloom 176B", "bloom-176b", 12, 1)
	sys, err := BuildSystem(cfg, gpu.A100SXM, Scale{TargetSteps: 250})
	if err != nil {
		t.Fatal(err)
	}
	var prev float64 = -1
	rising := true
	for _, slow := range []float64{1.0, 1.1, 1.3, 1.5} {
		plan, err := sys.perseusClusterPlan(slow)
		if err != nil {
			t.Fatal(err)
		}
		sav, err := clusterStragglerSavings(sys, 16, slow, plan)
		if err != nil {
			t.Fatal(err)
		}
		if rising && sav < prev-0.002 {
			rising = false
		} else if !rising && sav > prev+0.002 {
			t.Errorf("savings rose again after declining at slowdown %v", slow)
		}
		prev = sav
	}
	if rising {
		t.Error("savings never declined; T* appears beyond 1.5, unlike the paper")
	}
}

func TestOverheadTable(t *testing.T) {
	tab, err := Overhead(gpu.A100PCIe, A100Workloads()[:1], Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || tab.Rows[0][1] == "0" {
		t.Fatalf("bad overhead table: %+v", tab.Rows)
	}
}

// TestWeakVsStrongScaling pins §6.3's scaling contrast: weak-scaling
// savings are flat across pipeline counts while strong-scaling savings
// decline as microbatches shrink... inverted here: Table 5 maps more
// pipelines to fewer microbatches, so strong-scaling savings *grow* with
// pipeline count while weak scaling stays constant.
func TestWeakVsStrongScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("emulation is slow")
	}
	tab, err := WeakVsStrongScaling("bloom-176b", "Bloom 176B", gpu.A100SXM, Scale{TargetSteps: 250})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Weak-scaling column constant across rows.
	first := cell(t, tab, 0, 2)
	for r := 1; r < len(tab.Rows); r++ {
		if v := cell(t, tab, r, 2); v != first {
			t.Errorf("weak scaling savings vary: %v vs %v", v, first)
		}
	}
	// Strong-scaling column varies (fewer microbatches -> more savings).
	if cell(t, tab, 3, 1) <= cell(t, tab, 0, 1) {
		t.Errorf("strong scaling at 128 pipelines (12 mb) should beat 16 pipelines (96 mb): %v vs %v",
			cell(t, tab, 3, 1), cell(t, tab, 0, 1))
	}
}

// TestStragglerBreakdownQuick covers the Figure 7 computation path at
// tiny scale: with a straggler, cluster-wide savings must exceed the
// intrinsic-only savings (extrinsic bloat removal adds on top).
func TestStragglerBreakdownQuick(t *testing.T) {
	cfg := emulationConfig("Bloom 176B", "bloom-176b", 8, 1)
	sys, err := BuildSystem(cfg, gpu.A100SXM, Scale{MaxMicrobatches: 8, TargetSteps: 150})
	if err != nil {
		t.Fatal(err)
	}
	intrinsic, both, err := sys.StragglerBreakdown(4, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if intrinsic <= 0 {
		t.Errorf("intrinsic savings %v <= 0", intrinsic)
	}
	if both <= intrinsic {
		t.Errorf("intrinsic+extrinsic %v should exceed intrinsic %v", both, intrinsic)
	}
}
