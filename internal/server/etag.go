package server

import "strings"

// etagMatch reports whether the If-None-Match header value matches the
// current entity tag, per RFC 9110 §13.1.2: the header is a
// comma-separated list of entity tags, `*` matches any current
// representation, and comparison is weak — a weak validator (`W/"v3"`)
// matches its strong form, which is what lets caching proxies that
// weaken stored validators keep revalidating instead of re-fetching.
// Bare (unquoted) tags are also accepted, matching what hand-written
// clients have always sent this server. The server's own tags never
// contain commas or embedded quotes, so splitting on commas is exact.
func etagMatch(header, current string) bool {
	cur := trimETag(current)
	for _, member := range strings.Split(header, ",") {
		member = strings.TrimSpace(member)
		if member == "" {
			continue
		}
		if member == "*" {
			return true
		}
		if trimETag(member) == cur {
			return true
		}
	}
	return false
}

// trimETag normalizes one entity tag for weak comparison: the `W/`
// weakness prefix and the surrounding quotes are dropped, leaving the
// opaque tag content.
func trimETag(tag string) string {
	tag = strings.TrimSpace(tag)
	if len(tag) >= 2 && (tag[0] == 'W' || tag[0] == 'w') && tag[1] == '/' {
		tag = tag[2:]
	}
	if len(tag) >= 2 && tag[0] == '"' && tag[len(tag)-1] == '"' {
		tag = tag[1 : len(tag)-1]
	}
	return tag
}
