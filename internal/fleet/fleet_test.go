package fleet

import (
	"math"
	"testing"
)

func TestFleetStateModel(t *testing.T) {
	f := New()
	if f.Len() != 0 || f.Cap() != 0 {
		t.Fatal("new fleet not empty and uncapped")
	}
	tbl := convexTable(0.01, 80, 95, 3000, 120)

	if err := f.Add(Job{Table: tbl}); err == nil {
		t.Error("job without id should be rejected")
	}
	if err := f.Add(Job{ID: "a"}); err == nil {
		t.Error("job without table should be rejected")
	}
	if err := f.Add(Job{ID: "a", Table: tbl}); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(Job{ID: "a", Table: tbl}); err == nil {
		t.Error("duplicate id should be rejected")
	}
	if err := f.Add(Job{ID: "b", Table: convexTable(0.01, 50, 67, 5000, 300), Pipelines: 2}); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 2 {
		t.Fatalf("fleet has %d jobs, want 2", f.Len())
	}

	snap := f.Snapshot()
	if len(snap) != 2 || snap[0].ID != "a" || snap[1].ID != "b" {
		t.Fatalf("snapshot order %+v, want registration order a,b", snap)
	}

	if err := f.SetStraggler("nope", 1.0); err == nil {
		t.Error("straggler on unknown job should fail")
	}
	if err := f.SetStraggler("a", 0.9); err != nil {
		t.Fatal(err)
	}
	if got := f.Snapshot()[0].TPrime; got != 0.9 {
		t.Fatalf("TPrime %v, want 0.9", got)
	}
	if err := f.SetStraggler("a", 0); err != nil {
		t.Fatal(err)
	}
	if got := f.Snapshot()[0].TPrime; got != 0 {
		t.Fatalf("TPrime %v after recovery, want 0", got)
	}

	if err := f.SetCap(1234); err != nil {
		t.Fatal(err)
	}
	if f.Cap() != 1234 {
		t.Fatalf("cap %v, want 1234", f.Cap())
	}
	alloc := f.Allocate()
	if alloc.CapW != 1234 || len(alloc.Jobs) != 2 {
		t.Fatalf("allocation %+v", alloc)
	}
	// Malformed caps are rejected and leave the cap in force unchanged.
	for _, bad := range []float64{-5, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := f.SetCap(bad); err == nil {
			t.Errorf("SetCap(%v) should be rejected", bad)
		}
	}
	if f.Cap() != 1234 {
		t.Fatalf("rejected cap mutated state: cap %v, want 1234", f.Cap())
	}
	if err := f.SetCap(0); err != nil {
		t.Fatalf("uncapping should succeed: %v", err)
	}
	if f.Cap() != 0 {
		t.Fatalf("cap %v after uncap, want 0", f.Cap())
	}

	f.Remove("nope") // no-op
	f.Remove("a")
	if f.Len() != 1 {
		t.Fatalf("fleet has %d jobs after removal, want 1", f.Len())
	}
	if snap := f.Snapshot(); len(snap) != 1 || snap[0].ID != "b" {
		t.Fatalf("snapshot after removal: %+v", snap)
	}
}

// TestFleetAllocateUsesCurrentState checks Allocate reflects mutations:
// a cap set after registration constrains, a straggler moves a floor.
func TestFleetAllocateUsesCurrentState(t *testing.T) {
	f := New()
	if err := f.Add(Job{ID: "a", Table: convexTable(0.01, 80, 95, 3000, 120)}); err != nil {
		t.Fatal(err)
	}
	free := f.Allocate()
	if !free.Feasible || free.Loss != 0 {
		t.Fatalf("uncapped allocation %+v", free)
	}
	if err := f.SetCap(free.PowerW * 0.96); err != nil {
		t.Fatal(err)
	}
	capped := f.Allocate()
	if capped.Loss <= 0 {
		t.Fatalf("capped allocation has no loss: %+v", capped)
	}
	if err := f.SetStraggler("a", f.Snapshot()[0].Table.TStar()); err != nil {
		t.Fatal(err)
	}
	slow := f.Allocate()
	if slow.Loss != 0 {
		t.Fatalf("straggler at T* should make the cap free, loss %v", slow.Loss)
	}
}
