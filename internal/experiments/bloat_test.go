package experiments

import (
	"strings"
	"testing"

	"perseus/internal/plan"
)

func TestBloatAttributionTable(t *testing.T) {
	span := plan.DecomposeSpan(plan.SpanInputs{
		Realized:   plan.Account{EnergyJ: 3.6e6, CarbonG: 500, CostUSD: 0.2},
		Iterations: 120,
		FloorJ:     3.0e6,
		TminJ:      3.4e6,
		MigrationJ: 0.1e6,
		MeanGPerJ:  2e-4,
		PredC:      480,
		PredRealC:  505,
	})
	if !span.Conserved(1e-9) {
		t.Fatalf("fixture span violates conservation: %+v", span)
	}
	tab := BloatAttributionTable("fixture", span)
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(tab.Rows))
	}
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatalf("render: %v", err)
	}
	out := b.String()
	for _, want := range []string{"realized", "frontier floor", "migration overhead",
		"residual bloat", "intrinsic removed", "temporal saved", "forecast drift",
		"conservation identity", "120 equal-work iterations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Energy column of realized = 3.6e6 J = 1.000 kWh.
	if tab.Rows[0][1] != "1.000" {
		t.Fatalf("realized kWh = %q, want 1.000", tab.Rows[0][1])
	}
}
