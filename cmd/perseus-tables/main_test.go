package main

import "testing"

// TestOrderMatchesRunners keeps the -experiment all sequence and the
// runner registry from drifting apart.
func TestOrderMatchesRunners(t *testing.T) {
	seen := map[string]bool{}
	for _, id := range order {
		if _, ok := runners[id]; !ok {
			t.Errorf("order lists %q but no runner exists", id)
		}
		if seen[id] {
			t.Errorf("order lists %q twice", id)
		}
		seen[id] = true
	}
	for id := range runners {
		if !seen[id] {
			t.Errorf("runner %q missing from order", id)
		}
	}
}
