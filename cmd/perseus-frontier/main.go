// Command perseus-frontier characterizes a workload's iteration
// time-energy frontier (paper §4) and prints it as CSV, optionally with
// the Zeus-derived baseline sweeps for comparison (paper Figure 9).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"perseus"
)

func main() {
	modelName := flag.String("model", "gpt3-1.3b", "model variant (see -list)")
	gpuName := flag.String("gpu", "A100-PCIe", "GPU preset")
	stages := flag.Int("stages", 4, "pipeline stages")
	mbSize := flag.Int("microbatch-size", 4, "microbatch size")
	micro := flag.Int("microbatches", 32, "microbatches per iteration")
	schedule := flag.String("schedule", "1f1b", "pipeline schedule")
	steps := flag.Int("steps", 1000, "approximate frontier points")
	baselinesFlag := flag.Bool("baselines", false, "also print ZeusGlobal and ZeusPerStage sweeps")
	list := flag.Bool("list", false, "list models and GPUs, then exit")
	flag.Parse()

	if *list {
		fmt.Println("models:", strings.Join(perseus.ModelNames(), " "))
		fmt.Println("gpus:  ", strings.Join(perseus.GPUNames(), " "))
		return
	}
	sys, err := perseus.Characterize(perseus.Workload{
		Model: *modelName, GPU: *gpuName, Stages: *stages,
		MicrobatchSize: *mbSize, Microbatches: *micro,
		Schedule: *schedule, TargetSteps: *steps,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "Tmin=%.3fs  T*=%.3fs  (%d schedules)\n",
		sys.Tmin(), sys.TStar(), len(sys.Frontier()))
	fmt.Println("system,time_s,energy_j")
	for _, p := range sys.Frontier() {
		fmt.Printf("perseus,%.6f,%.3f\n", p.Time, p.Energy)
	}
	if *baselinesFlag {
		for _, name := range []string{"zeus-global", "zeus-per-stage"} {
			pts, err := sys.BaselineFrontier(name)
			if err != nil {
				log.Fatal(err)
			}
			for _, p := range pts {
				fmt.Printf("%s,%.6f,%.3f\n", name, p.Time, p.Energy)
			}
		}
	}
}
