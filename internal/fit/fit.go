// Package fit implements the continuous relaxation of paper §4.1 /
// Appendix D: fitting the exponential function e(t) = a·e^{b·t} + c to the
// Pareto-optimal (time, energy) measurements of each forward and backward
// computation. The exponential captures the diminishing returns of
// spending energy to reduce computation time and turns the NP-hard
// discrete problem into an efficiently solvable continuous one.
package fit

import (
	"fmt"
	"math"
)

// Curve maps a planned computation duration to predicted energy.
type Curve interface {
	// Eval returns the predicted energy at duration t.
	Eval(t float64) float64
}

// Exp is the fitted exponential a·e^{b·(t−t0)} + c. The time shift t0
// keeps the exponent small for numerical stability; it is folded into a
// when convenient but kept explicit so durations far from zero (integer τ
// units) do not overflow.
type Exp struct {
	A, B, C float64
	T0      float64
}

// Eval returns a·e^{b·(t−t0)} + c.
func (e Exp) Eval(t float64) float64 {
	return e.A*math.Exp(e.B*(t-e.T0)) + e.C
}

func (e Exp) String() string {
	return fmt.Sprintf("%.6g*exp(%.6g*(t-%.6g))+%.6g", e.A, e.B, e.T0, e.C)
}

// FitExp fits e(t) = a·e^{b·(t−t0)} + c to the points by least squares:
// for each candidate decay rate b, the optimal (a, c) solve a 2×2 linear
// system; b itself is found by golden-section search over a log-spaced
// bracket. Points must be at least three, with strictly increasing times.
func FitExp(ts, es []float64) (Exp, error) {
	if len(ts) != len(es) {
		return Exp{}, fmt.Errorf("fit: %d times vs %d energies", len(ts), len(es))
	}
	if len(ts) < 3 {
		return Exp{}, fmt.Errorf("fit: need at least 3 points, got %d", len(ts))
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			return Exp{}, fmt.Errorf("fit: times not strictly increasing at %d", i)
		}
	}
	t0 := ts[0]
	span := ts[len(ts)-1] - ts[0]
	if span <= 0 {
		return Exp{}, fmt.Errorf("fit: degenerate time span")
	}

	sse := func(b float64) (float64, float64, float64) {
		// Linear least squares for (a, c) with u = exp(b (t - t0)).
		var su, suu, se, sue float64
		n := float64(len(ts))
		for i := range ts {
			u := math.Exp(b * (ts[i] - t0))
			su += u
			suu += u * u
			se += es[i]
			sue += u * es[i]
		}
		den := n*suu - su*su
		if math.Abs(den) < 1e-30 {
			return math.Inf(1), 0, 0
		}
		a := (n*sue - su*se) / den
		c := (se - a*su) / n
		var s float64
		for i := range ts {
			r := a*math.Exp(b*(ts[i]-t0)) + c - es[i]
			s += r * r
		}
		return s, a, c
	}

	// Bracket b over decay rates spanning "barely curved" to "cliff".
	bestB, bestSSE := -1.0/span, math.Inf(1)
	for k := 0; k < 60; k++ {
		b := -math.Pow(10, -2+4*float64(k)/59) / span // 0.01/span .. 100/span
		if s, _, _ := sse(b); s < bestSSE {
			bestSSE, bestB = s, b
		}
	}
	// Golden-section refinement around the best grid point.
	lo, hi := bestB*3, bestB/3 // lo < hi (both negative)
	const phi = 0.6180339887498949
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, _, _ := sse(x1)
	f2, _, _ := sse(x2)
	for iter := 0; iter < 80; iter++ {
		if f1 < f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1, _, _ = sse(x1)
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2, _, _ = sse(x2)
		}
	}
	b := (lo + hi) / 2
	if s, _, _ := sse(b); s > bestSSE {
		b = bestB
	}
	_, a, c := sse(b)
	return Exp{A: a, B: b, C: c, T0: t0}, nil
}

// PiecewiseLinear interpolates linearly between measured points; outside
// the measured range it extrapolates with the boundary segment's slope.
// It is the ablation alternative to the exponential fit (DESIGN.md §5).
type PiecewiseLinear struct {
	ts, es []float64
}

// FitPiecewise builds a piecewise-linear curve through the points, which
// must have strictly increasing times.
func FitPiecewise(ts, es []float64) (*PiecewiseLinear, error) {
	if len(ts) != len(es) || len(ts) < 2 {
		return nil, fmt.Errorf("fit: need at least 2 matched points")
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			return nil, fmt.Errorf("fit: times not strictly increasing at %d", i)
		}
	}
	return &PiecewiseLinear{
		ts: append([]float64(nil), ts...),
		es: append([]float64(nil), es...),
	}, nil
}

// Eval returns the interpolated energy at duration t.
func (p *PiecewiseLinear) Eval(t float64) float64 {
	n := len(p.ts)
	// Find the segment by binary search.
	lo, hi := 0, n-1
	switch {
	case t <= p.ts[0]:
		lo, hi = 0, 1
	case t >= p.ts[n-1]:
		lo, hi = n-2, n-1
	default:
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if p.ts[mid] <= t {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	t1, t2 := p.ts[lo], p.ts[hi]
	e1, e2 := p.es[lo], p.es[hi]
	return e1 + (e2-e1)*(t-t1)/(t2-t1)
}

// RMSE returns the root-mean-square error of a curve over the points.
func RMSE(c Curve, ts, es []float64) float64 {
	var s float64
	for i := range ts {
		r := c.Eval(ts[i]) - es[i]
		s += r * r
	}
	return math.Sqrt(s / float64(len(ts)))
}
