package server

import (
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"perseus/internal/client"
	"perseus/internal/grid"
)

// fakeClock is a settable wall clock for deterministic accrual tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// testSignal is a small two-interval trace: a dirty hour then a clean
// one.
func testSignal() grid.Signal {
	return grid.Signal{Name: "test", Intervals: []grid.Interval{
		{StartS: 0, EndS: 3600, CarbonGPerKWh: 500, PriceUSDPerKWh: 0.2},
		{StartS: 3600, EndS: 7200, CarbonGPerKWh: 100, PriceUSDPerKWh: 0.05},
	}}
}

func TestGridSignalEndpoint(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	// No signal installed yet.
	if _, err := cl.FetchGridSignal(); err == nil {
		t.Fatal("fetching a missing signal should 404")
	}

	ack, err := cl.UploadGridSignal(testSignal(), "cost")
	if err != nil {
		t.Fatal(err)
	}
	if ack.Intervals != 2 || ack.HorizonS != 7200 || ack.Objective != "cost" || ack.Name != "test" {
		t.Fatalf("ack %+v", ack)
	}
	got, err := cl.FetchGridSignal()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Intervals) != 2 || got.Intervals[1].CarbonGPerKWh != 100 {
		t.Fatalf("round-tripped signal %+v", got)
	}

	// Invalid signals and objectives are rejected with 400 — including
	// negative and non-finite rates, which must never reach Optimize or
	// the emissions accrual (the parse layer enforces the same contract
	// for CSV/JSON files; see internal/grid).
	for name, body := range map[string]string{
		"bad objective":  `{"signal":{"intervals":[{"start_s":0,"end_s":10,"carbon_g_per_kwh":1}]},"objective":"vibes"}`,
		"empty signal":   `{"signal":{"intervals":[]}}`,
		"gap":            `{"signal":{"intervals":[{"start_s":5,"end_s":10}]}}`,
		"negative rate":  `{"signal":{"intervals":[{"start_s":0,"end_s":10,"carbon_g_per_kwh":-5}]}}`,
		"negative price": `{"signal":{"intervals":[{"start_s":0,"end_s":10,"carbon_g_per_kwh":1,"price_usd_per_kwh":-0.1}]}}`,
		"negative cap":   `{"signal":{"intervals":[{"start_s":0,"end_s":10,"carbon_g_per_kwh":1,"cap_w":-1}]}}`,
		"nan carbon":     `{"signal":{"intervals":[{"start_s":0,"end_s":10,"carbon_g_per_kwh":NaN}]}}`,
	} {
		resp, err := http.Post(ts.URL+"/grid/signal", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestGridPlanEndpoint(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	}, 4)

	// Planning before a signal is installed fails.
	if _, err := cl.FetchGridPlan(id, 100, 0, ""); err == nil {
		t.Fatal("planning without a signal should fail")
	}
	if _, err := cl.UploadGridSignal(testSignal(), ""); err != nil {
		t.Fatal(err)
	}

	// A feasible plan completes the target and prefers the clean hour.
	tbl, err := srv.Table(id)
	if err != nil {
		t.Fatal(err)
	}
	target := math.Floor(0.5 * 7200 / tbl.TStar())
	plan, err := cl.FetchGridPlan(id, target, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible || math.Abs(plan.Iterations-target) > 1e-6*target {
		t.Fatalf("plan feasible=%v iterations=%v, want target %v", plan.Feasible, plan.Iterations, target)
	}
	if plan.Objective != grid.ObjectiveCarbon {
		t.Fatalf("plan objective %q, want server default carbon", plan.Objective)
	}
	if len(plan.Intervals) != 2 || plan.Intervals[1].EnergyJ <= plan.Intervals[0].EnergyJ {
		t.Fatalf("plan does not shift into the clean hour: %+v", plan.Intervals)
	}
	// An explicit objective overrides the default.
	costPlan, err := cl.FetchGridPlan(id, target, 0, "cost")
	if err != nil {
		t.Fatal(err)
	}
	if costPlan.Objective != grid.ObjectiveCost {
		t.Fatalf("objective %q, want cost", costPlan.Objective)
	}

	// An unachievable target round-trips as a real JSON plan with
	// Feasible=false and a finite FinishS (-1), not a marshal failure —
	// and the client's query encoding must survive exponent-notation
	// floats like 1e+12.
	huge, err := cl.FetchGridPlan(id, 1e12, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if huge.Feasible || huge.FinishS != -1 || huge.Iterations <= 0 {
		t.Fatalf("unachievable target: %+v", huge)
	}

	// Error paths: unknown job 404s, bad parameters 400.
	resp, err := http.Get(ts.URL + "/grid/plan/nope?iterations=10")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
	for name, q := range map[string]string{
		"missing iterations": "",
		"bad iterations":     "?iterations=banana",
		"deadline too far":   "?iterations=10&deadline=1e9",
		"bad objective":      "?iterations=10&objective=vibes",
	} {
		resp, err := http.Get(ts.URL + "/grid/plan/" + id + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}

	// An uncharacterized job cannot be planned.
	raw, err := srv.Register(JobRequest{Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.GridPlan(raw, 10, 0, ""); err == nil {
		t.Fatal("planning an uncharacterized job should fail")
	}
}

func TestEmissionsAccounting(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1_700_000_000, 0)}
	srv := New()
	srv.SetClock(clock.Now)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := client.NewServerClient(ts.URL)

	id := registerCharacterized(t, srv, JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3, DataParallel: 2,
	}, 4)
	tbl, err := srv.Table(id)
	if err != nil {
		t.Fatal(err)
	}
	tminPower := 2 * tbl.AvgPower(0) // DataParallel scales the draw

	// Before any time passes the account is ready but empty.
	e0, err := cl.FetchEmissions(id)
	if err != nil {
		t.Fatal(err)
	}
	if !e0.Ready || e0.EnergyJ != 0 {
		t.Fatalf("fresh account %+v", e0)
	}
	// Unknown jobs 404.
	if _, err := cl.FetchEmissions("nope"); err == nil {
		t.Fatal("emissions of unknown job should fail")
	}

	// One signal-less hour at the Tmin point: energy only.
	clock.Advance(time.Hour)
	e1, err := cl.FetchEmissions(id)
	if err != nil {
		t.Fatal(err)
	}
	wantE := tminPower * 3600
	if math.Abs(e1.EnergyJ-wantE) > 1e-6*wantE || e1.CarbonG != 0 {
		t.Fatalf("signal-less hour: energy %v carbon %v, want %v and 0", e1.EnergyJ, e1.CarbonG, wantE)
	}
	if e1.SinceS != 3600 {
		t.Fatalf("since %v, want 3600", e1.SinceS)
	}

	// Install the signal, then spend the dirty hour and half the clean
	// one at Tmin.
	if _, err := cl.UploadGridSignal(testSignal(), ""); err != nil {
		t.Fatal(err)
	}
	clock.Advance(90 * time.Minute)
	e2, err := cl.FetchEmissions(id)
	if err != nil {
		t.Fatal(err)
	}
	wantC := tminPower*3600/grid.JoulesPerKWh*500 + tminPower*1800/grid.JoulesPerKWh*100
	if math.Abs(e2.CarbonG-wantC) > 1e-6*wantC {
		t.Fatalf("carbon %v, want %v", e2.CarbonG, wantC)
	}
	wantUSD := tminPower*3600/grid.JoulesPerKWh*0.2 + tminPower*1800/grid.JoulesPerKWh*0.05
	if math.Abs(e2.CostUSD-wantUSD) > 1e-6*wantUSD {
		t.Fatalf("cost %v, want %v", e2.CostUSD, wantUSD)
	}

	// A straggler moves the deployed point; the pre-change span must be
	// settled at the old power and the post-change span at the new one.
	if err := srv.SetStraggler(id, StragglerNotice{ID: "gpu0", Degree: 1e9}); err != nil {
		t.Fatal(err)
	}
	slowPower := 2 * tbl.AvgPower(len(tbl.Points)-1) // clamped at T*
	clock.Advance(30 * time.Minute)
	e3, err := cl.FetchEmissions(id)
	if err != nil {
		t.Fatal(err)
	}
	wantC += slowPower * 1800 / grid.JoulesPerKWh * 100
	if math.Abs(e3.CarbonG-wantC) > 1e-6*wantC {
		t.Fatalf("post-straggler carbon %v, want %v", e3.CarbonG, wantC)
	}
	if e3.EnergyJ <= e2.EnergyJ {
		t.Fatal("energy did not grow")
	}

	// Beyond the horizon the signal repeats: the next hour lands on the
	// dirty interval of cycle 2 (signal time [7200, 10800) → [0, 3600)).
	clock.Advance(time.Hour)
	e4, err := cl.FetchEmissions(id)
	if err != nil {
		t.Fatal(err)
	}
	wantC += slowPower * 3600 / grid.JoulesPerKWh * 500
	if math.Abs(e4.CarbonG-wantC) > 1e-6*wantC {
		t.Fatalf("cyclic carbon %v, want %v", e4.CarbonG, wantC)
	}
}

func TestFleetCapRejectsMalformedWatts(t *testing.T) {
	srv := New()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"negative": `{"cap_w": -10}`,
		"nan":      `{"cap_w": "nan"}`, // json decode failure is a 400 too
		"inf1e999": `{"cap_w": 1e999}`,
	} {
		resp, err := http.Post(ts.URL+"/fleet/cap", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if _, err := srv.SetFleetCap(math.NaN()); err == nil {
		t.Error("SetFleetCap(NaN) should be rejected")
	}
	if _, err := srv.SetFleetCap(math.Inf(1)); err == nil {
		t.Error("SetFleetCap(+Inf) should be rejected")
	}
	if _, err := srv.SetFleetCap(0); err != nil {
		t.Errorf("SetFleetCap(0) should uncap: %v", err)
	}
}
