// Command perseus-smoke is the CI observability smoke test: it boots
// the server in-process, drives one end-to-end planning flow over HTTP
// (register → profile → signal → plan ×2 → controller tick), then
// scrapes /metrics, /healthz, and /debug/ledger and exits non-zero
// unless every core series is present with a sane value and the
// energy-bloat ledger conserves. It guards the contract dashboards and
// alerting would be built on: the exposition endpoint keeps serving
// the documented metric catalog after real traffic.
package main

import (
	"encoding/csv"
	"fmt"
	"log"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"perseus/internal/client"
	"perseus/internal/gpu"
	"perseus/internal/grid"
	"perseus/internal/model"
	"perseus/internal/partition"
	"perseus/internal/profile"
	"perseus/internal/sched"
	"perseus/internal/server"
)

// buildProfile synthesizes the measurements a client-side profiler
// would report (the same construction the demos and server tests use).
func buildProfile(g *gpu.Model, stages, mbSize int) ([]profile.Measurement, float64, error) {
	m, err := model.GPT3("1.3b")
	if err != nil {
		return nil, 0, err
	}
	part, err := partition.MinImbalance(m.LayerCosts(), stages)
	if err != nil {
		return nil, 0, err
	}
	w := profile.Workload{
		Model: m, GPU: g, Stages: stages, Chunks: 1,
		Partition: part.Boundaries, MicrobatchSize: mbSize, TensorParallel: 1,
	}
	refs, err := w.StageRefTimes()
	if err != nil {
		return nil, 0, err
	}
	var ms []profile.Measurement
	for v, ref := range refs {
		for _, f := range g.Frequencies() {
			ms = append(ms,
				profile.Measurement{Virtual: v, Kind: sched.Forward, Freq: f,
					Time: g.Time(ref, f, g.MemBoundFwd), Energy: g.Energy(ref, f, g.MemBoundFwd)},
				profile.Measurement{Virtual: v, Kind: sched.Backward, Freq: f,
					Time: g.Time(2*ref, f, g.MemBoundBwd), Energy: g.Energy(2*ref, f, g.MemBoundBwd)})
		}
	}
	return ms, profile.MeasurePBlocking(g), nil
}

func main() {
	srv := server.New()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	cl := client.NewServerClient("http://" + ln.Addr().String())

	// Drive the flow the metrics should record.
	id, err := cl.RegisterJob(client.JobRequest{
		Schedule: "1f1b", Stages: 2, Microbatches: 4, GPU: "A100-PCIe", Unit: 5e-3,
	})
	if err != nil {
		log.Fatal(err)
	}
	g, err := gpu.ByName("A100-PCIe")
	if err != nil {
		log.Fatal(err)
	}
	ms, pBlocking, err := buildProfile(g, 2, 4)
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.UploadProfile(id, pBlocking, ms); err != nil {
		log.Fatal(err)
	}
	dep, err := cl.WaitSchedule(id, 200, 50*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	sig := grid.Diurnal24h()
	if _, err := cl.UploadGridSignal(*sig, "carbon"); err != nil {
		log.Fatal(err)
	}
	target := math.Floor(0.5 * sig.Horizon() / dep.Tmin)
	// Twice: one cache miss, one hit.
	if _, err := cl.FetchGridPlan(id, target, 0, ""); err != nil {
		log.Fatal(err)
	}
	if _, err := cl.FetchGridPlan(id, target, 0, ""); err != nil {
		log.Fatal(err)
	}
	if _, err := cl.TickController(); err != nil {
		log.Fatal(err)
	}

	// Scrape and assert.
	h, err := cl.FetchHealth()
	if err != nil {
		log.Fatal(err)
	}
	if h.Status != "ok" || h.Jobs != 1 || !h.SignalInstalled || !h.Ready {
		log.Fatalf("smoke: bad health view %+v", h)
	}
	if len(h.SLOs) == 0 {
		log.Fatalf("smoke: /healthz reports no SLO statuses: %+v", h)
	}
	for _, slo := range h.SLOs {
		if slo.Status != "ok" {
			log.Fatalf("smoke: SLO %s is %s after a clean flow (%+v)", slo.Name, slo.Status, slo)
		}
	}

	// The plan request left a complete trace: the cache-miss request's
	// span tree must hold at least the four documented layers
	// (HTTP root → store snapshot + cache lookup → planner solve).
	traces, err := cl.FetchTraces(0, 0, "planner.solve")
	if err != nil {
		log.Fatal(err)
	}
	var planTrace *client.Trace
	for i := range traces {
		for _, sp := range traces[i].Spans {
			if sp.Name == "cache.lookup" {
				planTrace = &traces[i]
			}
		}
	}
	if planTrace == nil {
		log.Fatalf("smoke: no plan-request trace retained (got %d traces)", len(traces))
	}
	if len(planTrace.Spans) < 4 {
		log.Fatalf("smoke: plan trace has %d spans, want >= 4: %+v", len(planTrace.Spans), planTrace.Spans)
	}
	for _, want := range []string{"http /grid/plan/{id}", "store.snapshot", "cache.lookup", "planner.solve"} {
		found := false
		for _, sp := range planTrace.Spans {
			if sp.Name == want {
				found = true
			}
		}
		if !found {
			log.Fatalf("smoke: plan trace missing span %q: %+v", want, planTrace.Spans)
		}
	}
	text, err := cl.FetchMetrics()
	if err != nil {
		log.Fatal(err)
	}
	core := []string{
		`perseus_http_requests_total{route="/grid/plan/{id}",method="GET",code="200"} 2`,
		"perseus_plan_cache_hits_total 1",
		"perseus_plan_cache_misses_total 1",
		"perseus_controller_ticks_total 1",
		"perseus_jobs_registered_total 1",
		`perseus_characterizations_total{outcome="ok"} 1`,
		`perseus_planner_plan_duration_seconds_count{planner="grid",objective="carbon"} 1`,
		`perseus_trace_spans_total{span="cache.lookup"} 2`,
		`perseus_slo_status{slo="plan-latency-p99"} 0`,
		`perseus_slo_status{slo="replan-failure-ratio"} 0`,
		`perseus_slo_status{slo="longpoll-wake-p99"} 0`,
	}
	var missing []string
	for _, want := range core {
		if !strings.Contains(text, want) {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		log.Fatalf("smoke: /metrics missing core series:\n  %s\nfull exposition:\n%s",
			strings.Join(missing, "\n  "), text)
	}
	events, err := cl.FetchEvents(0)
	if err != nil {
		log.Fatal(err)
	}
	if len(events) == 0 {
		log.Fatal("smoke: /debug/events returned no events after the flow")
	}

	// The controller tick settled the job's first accounting span into
	// the energy-bloat ledger: every entry must conserve, the per-job
	// and fleet series must be exported, and the CSV export must
	// round-trip the JSON view.
	led, err := cl.FetchLedger("", 0)
	if err != nil {
		log.Fatal(err)
	}
	if len(led.Jobs) != 1 || led.Jobs[0].JobID != id || len(led.Jobs[0].Entries) == 0 {
		log.Fatalf("smoke: ledger has no settled entries for %s: %+v", id, led)
	}
	entries := led.Jobs[0].Entries
	for i, e := range entries {
		sum := e.FloorJ + e.MigrationJ + e.ResidualJ
		if math.Abs(sum-e.EnergyJ) > 1e-9*math.Max(1, e.EnergyJ) {
			log.Fatalf("smoke: ledger entry %d violates energy conservation: floor %v + migration %v + residual %v != %v",
				i, e.FloorJ, e.MigrationJ, e.ResidualJ, e.EnergyJ)
		}
		csum := e.FloorC + e.MigrationC + e.ResidualC
		if math.Abs(csum-e.CarbonG) > 1e-9*math.Max(1, e.CarbonG) {
			log.Fatalf("smoke: ledger entry %d violates carbon conservation: %+v", i, e)
		}
	}
	if led.Fleet.EnergyJ != led.Jobs[0].Totals.EnergyJ {
		log.Fatalf("smoke: fleet rollup %v != sole job's totals %v", led.Fleet.EnergyJ, led.Jobs[0].Totals.EnergyJ)
	}
	for _, want := range []string{
		`perseus_job_energy_joules_total{job="` + id + `",component="realized"}`,
		`perseus_job_energy_joules_total{job="` + id + `",component="floor"}`,
		"perseus_fleet_bloat_energy_joules_total",
		"perseus_fleet_bloat_carbon_g_total",
		`perseus_slo_status{slo="carbon-drift-ratio"} 0`,
	} {
		if !strings.Contains(text, want) {
			log.Fatalf("smoke: /metrics missing ledger series %q", want)
		}
	}
	raw, err := cl.FetchLedgerCSV(id, 0)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(raw)).ReadAll()
	if err != nil {
		log.Fatalf("smoke: ledger CSV does not parse: %v", err)
	}
	// Every /debug/ledger read settles the span since the last one, so
	// on a real clock the CSV fetched after the JSON holds at least as
	// many entries — never fewer.
	if len(rows) < len(entries)+1 {
		log.Fatalf("smoke: ledger CSV has %d rows, want at least header + %d entries", len(rows), len(entries))
	}
	if rows[0][0] != "job" || rows[0][5] != "energy_j" {
		log.Fatalf("smoke: ledger CSV header %v", rows[0])
	}
	for i, row := range rows[1:] {
		if len(row) != len(rows[0]) {
			log.Fatalf("smoke: CSV row %d has %d fields, want %d", i, len(row), len(rows[0]))
		}
		num := func(col int) float64 {
			v, err := strconv.ParseFloat(row[col], 64)
			if err != nil {
				log.Fatalf("smoke: CSV row %d col %d %q: %v", i, col, row[col], err)
			}
			return v
		}
		// The exported floats round-trip losslessly ('g', -1), so the
		// conservation identity must survive the CSV encoding exactly.
		energy, floor, migration, residual := num(5), num(8), num(9), num(10)
		if math.Abs(floor+migration+residual-energy) > 1e-9*math.Max(1, energy) {
			log.Fatalf("smoke: CSV row %d violates conservation: %v", i, row)
		}
	}

	// Unregistering the job drops its per-job series — cardinality must
	// shrink, while the fleet rollup retains the history.
	if err := cl.RemoveJob(id); err != nil {
		log.Fatal(err)
	}
	text, err = cl.FetchMetrics()
	if err != nil {
		log.Fatal(err)
	}
	if strings.Contains(text, `job="`+id+`"`) {
		log.Fatalf("smoke: /metrics still carries per-job series after removing %s", id)
	}
	after, err := cl.FetchLedger("", 0)
	if err != nil {
		log.Fatal(err)
	}
	// The remove settles the job's final span first, so the fleet
	// rollup can only have grown — history is retained, never rewritten.
	if len(after.Jobs) != 0 || after.Fleet.EnergyJ < led.Fleet.EnergyJ {
		log.Fatalf("smoke: ledger after remove = %+v, want no jobs and fleet >= %v", after, led.Fleet.EnergyJ)
	}

	fmt.Printf("smoke ok: %d core series present, %d events recorded, %d-span plan trace, %d SLOs ok, %d ledger entries conserve, uptime %.2fs\n",
		len(core), len(events), len(planTrace.Spans), len(h.SLOs), len(entries), h.UptimeS)
}
