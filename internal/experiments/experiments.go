package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"perseus/internal/baselines"
	"perseus/internal/cluster"
	"perseus/internal/gpu"
	"perseus/internal/model"
	"perseus/internal/partition"
)

// Table is one reproduced table or figure series, renderable as text.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		return strings.TrimRight(b.String(), " ")
	}
	if _, err := fmt.Fprintf(w, "== %s ==\n%s\n", t.Title, line(t.Header)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Table1 reproduces paper Table 1: the minimum imbalance ratio of every
// model for 4 and 8 pipeline stages.
func Table1() (*Table, error) {
	t := &Table{
		Title:  "Table 1: minimum forward-latency imbalance ratio (1.00 = perfect balance)",
		Header: []string{"Model", "Params", "4 stages", "8 stages"},
	}
	for _, m := range model.Catalog() {
		row := []string{m.Name, fmt.Sprintf("%.1fB", float64(m.Params())/1e9)}
		for _, n := range []int{4, 8} {
			r, err := partition.MinImbalance(m.LayerCosts(), n)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%.2f", r.Ratio))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Table7 reproduces Appendix B Table 7: the minimum-imbalance partitions.
func Table7() (*Table, error) {
	t := &Table{
		Title:  "Table 7: minimum imbalance partitions (layer boundary indices)",
		Header: []string{"Model", "4-stage partition", "8-stage partition"},
	}
	for _, m := range model.Catalog() {
		row := []string{m.Name}
		for _, n := range []int{4, 8} {
			r, err := partition.MinImbalance(m.LayerCosts(), n)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprint(r.Boundaries))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// PotentialSavings reproduces §2.4: the energy saved by running every
// computation at its minimum-energy frequency, an upper bound that ignores
// the resulting slowdown.
func PotentialSavings(g *gpu.Model, cfgs []WorkloadConfig, sc Scale) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Potential savings upper bound on %s (all computations at min-energy frequency)", g.Name),
		Header: []string{"Workload", "Savings (%)", "Slowdown (%)"},
	}
	var sum float64
	for _, cfg := range cfgs {
		sys, err := BuildSystem(cfg, g, sc)
		if err != nil {
			return nil, err
		}
		plan, err := sys.MinEnergyPlan()
		if err != nil {
			return nil, err
		}
		res, err := sys.SimulatePlan(plan)
		if err != nil {
			return nil, err
		}
		sav := 1 - res.Energy/sys.Base.Energy
		sum += sav
		t.Rows = append(t.Rows, []string{cfg.Display, pct(sav), pct(res.IterTime/sys.Base.IterTime - 1)})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("average savings %.1f%% (paper: 16%% on A100, 27%% on A40)",
		100*sum/float64(len(cfgs))))
	return t, nil
}

// Table3 reproduces paper Table 3: intrinsic energy bloat reduction
// without stragglers, Perseus versus EnvPipe, with iteration slowdown.
func Table3(g *gpu.Model, cfgs []WorkloadConfig, sc Scale) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Table 3: intrinsic bloat reduction on %s (no stragglers)", g.Name),
		Header: []string{"Model", "Perseus savings (%)", "EnvPipe savings (%)",
			"Perseus slowdown (%)", "EnvPipe slowdown (%)"},
	}
	for _, cfg := range cfgs {
		sys, err := BuildSystem(cfg, g, sc)
		if err != nil {
			return nil, err
		}
		pres, err := sys.SimulatePlan(sys.PerseusPlan(0))
		if err != nil {
			return nil, err
		}
		eplan, err := baselines.EnvPipe(sys.Spec)
		if err != nil {
			return nil, err
		}
		eres, err := sys.SimulatePlan(eplan)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			cfg.Display,
			pct(1 - pres.Energy/sys.Base.Energy),
			pct(1 - eres.Energy/sys.Base.Energy),
			pct(pres.IterTime/sys.Base.IterTime - 1),
			pct(eres.IterTime/sys.Base.IterTime - 1),
		})
	}
	return t, nil
}

// StragglerSlowdowns are the straggler factors of paper Table 4.
var StragglerSlowdowns = []float64{1.05, 1.1, 1.2, 1.3, 1.4, 1.5}

// Table4 reproduces paper Table 4: energy savings of a non-straggler
// pipeline for varying straggler slowdowns, Perseus versus EnvPipe.
func Table4(g *gpu.Model, cfgs []WorkloadConfig, sc Scale) (*Table, error) {
	header := []string{"Model", "Method"}
	for _, s := range StragglerSlowdowns {
		header = append(header, fmt.Sprintf("%.2f", s))
	}
	t := &Table{
		Title:  fmt.Sprintf("Table 4: non-straggler savings (%%) vs straggler slowdown T'/T on %s", g.Name),
		Header: header,
	}
	for _, cfg := range cfgs {
		sys, err := BuildSystem(cfg, g, sc)
		if err != nil {
			return nil, err
		}
		prow := []string{cfg.Display, "Perseus"}
		erow := []string{"", "EnvPipe"}
		eplan, err := baselines.EnvPipe(sys.Spec)
		if err != nil {
			return nil, err
		}
		for _, slow := range StragglerSlowdowns {
			ps, es, err := stragglerSavings(sys, eplan, slow)
			if err != nil {
				return nil, err
			}
			prow = append(prow, pct(ps))
			erow = append(erow, pct(es))
		}
		t.Rows = append(t.Rows, prow, erow)
	}
	t.Notes = append(t.Notes,
		"T*/Tmin per workload governs where savings peak (paper §6.2.2)")
	return t, nil
}

// stragglerSavings computes the non-straggler pipeline's energy savings
// under one straggler with the given slowdown factor, for Perseus and for
// EnvPipe, relative to the all-max baseline in the same scenario.
func stragglerSavings(sys *System, envpipePlan cluster.Plan, slow float64) (perseus, envpipe float64, err error) {
	spec := sys.Spec
	spec.DataParallel = 2
	straggle := []cluster.Straggler{{Pipeline: 0, Factor: slow}}
	maxPlan := cluster.PlanAllMax(spec.Schedule, sys.GPU)

	base, err := cluster.Simulate(spec, maxPlan, straggle)
	if err != nil {
		return 0, 0, err
	}
	baseline := base.PerPipeline[1].ComputeJ + base.PerPipeline[1].BlockJ

	// The straggler keeps the no-straggler Perseus schedule (it is slow
	// because the infrastructure throttled it); non-stragglers get the
	// schedule for the anticipated straggler iteration time T'.
	fastest := sys.PerseusPlan(0)
	fastRes, err := cluster.Simulate(spec, fastest, nil)
	if err != nil {
		return 0, 0, err
	}
	tPrime := fastRes.IterTime * slow
	slowPlan := sys.PerseusPlan(tPrime)
	pres, err := cluster.SimulateMulti(spec, func(p int) cluster.Plan {
		if p == 0 {
			return fastest
		}
		return slowPlan
	}, straggle)
	if err != nil {
		return 0, 0, err
	}
	perseusE := pres.PerPipeline[1].ComputeJ + pres.PerPipeline[1].BlockJ

	eres, err := cluster.Simulate(spec, envpipePlan, straggle)
	if err != nil {
		return 0, 0, err
	}
	envpipeE := eres.PerPipeline[1].ComputeJ + eres.PerPipeline[1].BlockJ

	return 1 - perseusE/baseline, 1 - envpipeE/baseline, nil
}

// FrontierSeries is one system's iteration time-energy curve for the
// frontier-comparison figures.
type FrontierSeries struct {
	Name   string
	Time   []float64
	Energy []float64
}

// FrontierComparison reproduces one panel of paper Figures 9/12/13: the
// simulated iteration time-energy frontier of Perseus against ZeusGlobal
// and ZeusPerStage. maxPoints subsamples the Perseus frontier for
// plotting.
func FrontierComparison(sys *System, maxPoints int) ([]FrontierSeries, error) {
	if maxPoints <= 1 {
		maxPoints = 40
	}
	pts := sys.Frontier.Points()
	stride := (len(pts) + maxPoints - 1) / maxPoints
	if stride < 1 {
		stride = 1
	}
	var per FrontierSeries
	per.Name = "Perseus"
	for i := 0; i < len(pts); i += stride {
		res, err := sys.SimulatePlan(cluster.Plan(pts[i].Plan()))
		if err != nil {
			return nil, err
		}
		per.Time = append(per.Time, res.IterTime)
		per.Energy = append(per.Energy, res.Energy)
	}
	zg, err := baselines.ZeusGlobal(sys.Spec)
	if err != nil {
		return nil, err
	}
	zp, err := baselines.ZeusPerStage(sys.Spec)
	if err != nil {
		return nil, err
	}
	series := []FrontierSeries{per, {Name: "ZeusGlobal"}, {Name: "ZeusPerStage"}}
	for _, p := range zg {
		series[1].Time = append(series[1].Time, p.Time)
		series[1].Energy = append(series[1].Energy, p.Energy)
	}
	for _, p := range zp {
		series[2].Time = append(series[2].Time, p.Time)
		series[2].Energy = append(series[2].Energy, p.Energy)
	}
	return series, nil
}

// ParetoDominates reports whether series a dominates series b: for every
// point of b there is a point of a that is at least as fast and consumes
// no more energy (within tol relative slack).
func ParetoDominates(a, b FrontierSeries, tol float64) bool {
	for i := range b.Time {
		ok := false
		for j := range a.Time {
			if a.Time[j] <= b.Time[i]*(1+tol) && a.Energy[j] <= b.Energy[i]*(1+tol) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// envPipePlan builds the EnvPipe plan for a system's pipeline.
func envPipePlan(sys *System) (cluster.Plan, error) {
	return baselines.EnvPipe(sys.Spec)
}

// Overhead reproduces §6.5: optimizer runtime per workload.
func Overhead(g *gpu.Model, cfgs []WorkloadConfig, sc Scale) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("§6.5 optimizer overhead on %s", g.Name),
		Header: []string{"Workload", "Frontier points", "Runtime"},
	}
	for _, cfg := range cfgs {
		start := time.Now()
		sys, err := BuildSystem(cfg, g, sc)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			cfg.Display,
			fmt.Sprint(len(sys.Frontier.Points())),
			time.Since(start).Round(time.Millisecond).String(),
		})
	}
	t.Notes = append(t.Notes, "paper: 6.5 min average on A100 workloads (Python); lookups are instantaneous")
	return t, nil
}
