// Package region adds the spatial degree of freedom to internal/grid's
// temporal one: datacenters in different grid regions see carbon and
// price curves that are hours out of phase and 2-5x apart in magnitude,
// so *where* a flexible training job runs matters as much as *when*.
//
// The package models a fleet of Regions — each a datacenter with a GPU
// capacity, its own grid.Signal, and a facility power cap — and plans,
// for a set of jobs with characterized frontiers and deadlines, a joint
// spatio-temporal schedule: per common-grid interval each job is placed
// in one region (running some frontier point), paused, or migrated.
// Migration is modeled as a fixed pause-cost (checkpoint transfer
// downtime plus transfer energy), so the planner only moves a job when
// the phase offset between regional curves pays for the move.
//
// The machinery reuses internal/grid end to end: a placement sequence
// is compiled into a composite grid.Signal (each interval carrying the
// assigned region's rates and cap, pauses and migration downtime
// carrying a force-idle cap), and grid.Optimize on that composite is
// the exact inner temporal subproblem. On top sits a cross-region
// assignment layer — greedy steepest-descent over contiguous segment
// moves, brute-force-verified on small instances like fleet.Allocate
// and grid.Optimize (brute_test.go) — plus the Fixed-placement and
// NoMigration baselines the planner must beat.
package region

import (
	"fmt"
	"math"

	"perseus/internal/frontier"
	"perseus/internal/grid"
)

// forceIdleCapW is a power cap below any frontier point's draw: a
// composite-signal interval carrying it can only idle. Used to encode
// pauses and migration downtime for grid.Optimize.
const forceIdleCapW = 1e-12

// Paused marks an unplaced interval in a placement sequence.
const Paused = -1

// Region is one datacenter in a multi-region fleet.
type Region struct {
	// Name labels the region in plans and tables.
	Name string `json:"name"`

	// GPUs is the region's capacity in GPUs; 0 means unbounded.
	GPUs int `json:"gpus"`

	// Signal is the region's grid trace (carbon, price, and interval
	// caps); repeated cyclically beyond its horizon.
	Signal *grid.Signal `json:"signal"`

	// CapW is the region's facility power cap in watts (0 = none); an
	// interval cap in the Signal tightens it further while in force.
	CapW float64 `json:"cap_w,omitempty"`
}

// Job is one training job to place across regions.
type Job struct {
	// ID names the job.
	ID string `json:"id"`

	// Table is the job's characterized time-energy frontier.
	Table *frontier.LookupTable `json:"-"`

	// GPUs is the capacity the job occupies wherever it is placed;
	// 0 means 1.
	GPUs int `json:"gpus,omitempty"`

	// PowerScale multiplies the table's per-point average power (e.g.
	// data-parallel replicas); <= 0 means 1.
	PowerScale float64 `json:"power_scale,omitempty"`

	// Target is the number of iterations to complete; must be positive.
	Target float64 `json:"target"`

	// DeadlineS is the completion deadline in seconds from trace start;
	// 0 means the planning horizon.
	DeadlineS float64 `json:"deadline_s,omitempty"`

	// Origin names the region the job currently occupies ("" = not yet
	// placed). When set, the first placed cell counts as a migration if
	// it differs from Origin — a rolling-horizon re-planner must pay to
	// move a job that is already running somewhere, or the re-plan would
	// treat every move as free.
	Origin string `json:"origin,omitempty"`
}

func (j *Job) gpus() int {
	if j.GPUs <= 0 {
		return 1
	}
	return j.GPUs
}

func (j *Job) scale() float64 {
	if j.PowerScale <= 0 {
		return 1
	}
	return j.PowerScale
}

// MigrationCost is the fixed pause-cost of moving a job between
// regions: the checkpoint transfer downtime (during which the job
// cannot run) and the transfer energy (charged at the destination
// region's rates at arrival).
type MigrationCost struct {
	DowntimeS float64 `json:"downtime_s"`
	EnergyJ   float64 `json:"energy_j"`
}

// Cell is one interval of the common planning grid: the union of every
// region's signal boundaries over the planning horizon, so each cell
// sees one constant set of rates per region.
type Cell struct {
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
}

// Duration returns the cell length in seconds.
func (c Cell) Duration() float64 { return c.EndS - c.StartS }

// commonGrid builds the shared cell grid over [0, horizon): every
// region's cyclic interval boundaries, merged and deduplicated.
func commonGrid(regions []Region, horizon float64) []Cell {
	sigs := make([]*grid.Signal, len(regions))
	for i := range regions {
		sigs[i] = regions[i].Signal
	}
	bounds := append([]float64{0}, grid.MergedBoundaries(sigs, horizon)...)
	bounds = append(bounds, horizon)
	cells := make([]Cell, 0, len(bounds)-1)
	for i := 1; i < len(bounds); i++ {
		cells = append(cells, Cell{StartS: bounds[i-1], EndS: bounds[i]})
	}
	return cells
}

// rates returns region r's (carbon, price, effective cap) in force over
// cell c: the signal's cyclic interval rates, with the interval cap and
// the region's facility cap merged (the tighter positive one wins).
func (r *Region) rates(c Cell) (carbon, price, capW float64) {
	capW = r.CapW
	iv, ok := r.Signal.AtCyclic(c.StartS)
	if !ok {
		return 0, 0, capW
	}
	carbon, price = iv.CarbonGPerKWh, iv.PriceUSDPerKWh
	if iv.CapW > 0 && (capW <= 0 || iv.CapW < capW) {
		capW = iv.CapW
	}
	return carbon, price, capW
}

// migrations lists the cells at whose start the job arrives in a new
// region under the placement: every transition between two distinct
// placed regions, pauses in between notwithstanding (the checkpoint
// still has to move). The initial placement is free unless origin
// names the region the job already occupies (origin >= 0), in which
// case the first placement elsewhere is a migration too.
func migrations(origin int, placement []int) []int {
	var out []int
	prev := origin
	for k, r := range placement {
		if r == Paused {
			continue
		}
		if prev != Paused && r != prev {
			out = append(out, k)
		}
		prev = r
	}
	return out
}

// compile builds the composite grid.Signal a placement sequence
// induces for one job: each cell carries its assigned region's rates
// and effective cap (capOverride, when non-nil, substitutes the
// capacity-shared cap), pauses carry a force-idle cap, and each
// migration's downtime force-idles the start of the arrival span —
// spilling across cells when the downtime exceeds one. It also returns
// the migration summary (count, downtime, and the transfer energy
// priced at each arrival cell's rates) and the composite-interval →
// cell mapping capacity accounting needs.
func compile(regions []Region, cells []Cell, placement []int, origin int, mig MigrationCost, capOverride func(region, cell int) float64) (*grid.Signal, migSummary, []int) {
	return compileInto(nil, regions, cells, placement, origin, mig, capOverride, nil)
}

// cellRates caches one region's effective (carbon, price, cap) over one
// cell, so hot candidate evaluation skips the cyclic signal scan that
// Region.rates performs per call.
type cellRates struct {
	carbon, price, capW float64
}

// rateTable precomputes Region.rates for every (region, cell) pair.
func rateTable(regions []Region, cells []Cell) [][]cellRates {
	tab := make([][]cellRates, len(regions))
	for r := range regions {
		tab[r] = make([]cellRates, len(cells))
		for k, c := range cells {
			carbon, price, capW := regions[r].rates(c)
			tab[r][k] = cellRates{carbon: carbon, price: price, capW: capW}
		}
	}
	return tab
}

// compileScratch holds compile's reusable output buffers; the signal a
// scratch-backed compileInto returns aliases them and is only valid
// until the next call with the same scratch.
type compileScratch struct {
	sig    grid.Signal
	cellOf []int
}

// compileInto is compile with reusable buffers: a non-nil scratch
// supplies (and retains) the interval and cell-map storage, and a
// non-nil rate table replaces the per-cell Region.rates scans. Both
// paths produce identical signals; compile is the allocate-fresh
// special case.
func compileInto(cs *compileScratch, regions []Region, cells []Cell, placement []int, origin int, mig MigrationCost, capOverride func(region, cell int) float64, rates [][]cellRates) (*grid.Signal, migSummary, []int) {
	var sum migSummary
	var sig *grid.Signal
	var cellOf []int
	if cs != nil {
		sig = &cs.sig
		sig.Name = "composite"
		sig.Intervals = sig.Intervals[:0]
		cellOf = cs.cellOf[:0]
	} else {
		sig = &grid.Signal{Name: "composite"}
	}
	idleUntil := math.Inf(-1) // downtime window currently being served
	prev := origin            // last placed region, for arrival detection
	for k, c := range cells {
		r := placement[k]
		var carbon, price, capW float64
		arrived := false
		if r == Paused {
			capW = forceIdleCapW
		} else {
			if rates != nil {
				rc := rates[r][k]
				carbon, price, capW = rc.carbon, rc.price, rc.capW
			} else {
				carbon, price, capW = regions[r].rates(c)
			}
			if capOverride != nil {
				capW = capOverride(r, k)
			}
			arrived = prev != Paused && r != prev
			prev = r
		}
		if arrived {
			idleUntil = c.StartS + mig.DowntimeS
			sum.count++
			sum.downtimeS += mig.DowntimeS
			sum.energyJ += mig.EnergyJ
			sum.carbonG += mig.EnergyJ / grid.JoulesPerKWh * carbon
			sum.costUSD += mig.EnergyJ / grid.JoulesPerKWh * price
		}
		if idleUntil > c.StartS {
			// The downtime covers a prefix of the cell (possibly all of
			// it); split so the remainder can still run.
			cut := math.Min(idleUntil, c.EndS)
			sig.Intervals = append(sig.Intervals, grid.Interval{
				StartS: c.StartS, EndS: cut,
				CarbonGPerKWh: carbon, PriceUSDPerKWh: price,
				CapW: forceIdleCapW,
			})
			cellOf = append(cellOf, k)
			if cut == c.EndS {
				continue
			}
			c.StartS = cut
		}
		sig.Intervals = append(sig.Intervals, grid.Interval{
			StartS: c.StartS, EndS: c.EndS,
			CarbonGPerKWh: carbon, PriceUSDPerKWh: price,
			CapW: capW,
		})
		cellOf = append(cellOf, k)
	}
	if cs != nil {
		cs.cellOf = cellOf
	}
	return sig, sum, cellOf
}

// migSummary totals a placement's migration costs.
type migSummary struct {
	count     int
	downtimeS float64
	energyJ   float64
	carbonG   float64
	costUSD   float64
}

// objectiveTotal reads the plan total matching the objective.
func objectiveTotal(p *grid.Plan) float64 {
	switch p.Objective {
	case grid.ObjectiveCost:
		return p.CostUSD
	case grid.ObjectiveEnergy:
		return p.EnergyJ
	default:
		return p.CarbonG
	}
}

// migObjective reads the migration summary's contribution to the
// objective.
func (m migSummary) objective(obj grid.Objective) float64 {
	switch obj {
	case grid.ObjectiveCost:
		return m.costUSD
	case grid.ObjectiveEnergy:
		return m.energyJ
	default:
		return m.carbonG
	}
}

// validate checks the shared planning inputs.
func validate(regions []Region, jobs []Job, opts Options) error {
	if len(regions) == 0 {
		return fmt.Errorf("region: planning needs at least one region")
	}
	names := map[string]bool{}
	for i := range regions {
		r := &regions[i]
		if r.Name == "" {
			return fmt.Errorf("region: region %d needs a name", i)
		}
		if names[r.Name] {
			return fmt.Errorf("region: duplicate region %q", r.Name)
		}
		names[r.Name] = true
		if r.Signal == nil {
			return fmt.Errorf("region: region %q needs a signal", r.Name)
		}
		if err := r.Signal.Validate(); err != nil {
			return fmt.Errorf("region: region %q: %w", r.Name, err)
		}
		if math.IsNaN(r.CapW) || math.IsInf(r.CapW, 0) || r.CapW < 0 {
			return fmt.Errorf("region: region %q has invalid cap %v", r.Name, r.CapW)
		}
	}
	if len(jobs) == 0 {
		return fmt.Errorf("region: planning needs at least one job")
	}
	ids := map[string]bool{}
	for i := range jobs {
		j := &jobs[i]
		if j.ID == "" {
			return fmt.Errorf("region: job %d needs an id", i)
		}
		if ids[j.ID] {
			return fmt.Errorf("region: duplicate job %q", j.ID)
		}
		ids[j.ID] = true
		if j.Table == nil || len(j.Table.Points) == 0 {
			return fmt.Errorf("region: job %q needs a characterized frontier table", j.ID)
		}
		if !(j.Target > 0) || math.IsInf(j.Target, 0) {
			return fmt.Errorf("region: job %q target must be positive and finite, got %v", j.ID, j.Target)
		}
		if math.IsNaN(j.DeadlineS) || math.IsInf(j.DeadlineS, 0) || j.DeadlineS < 0 {
			return fmt.Errorf("region: job %q deadline must be finite and non-negative, got %v", j.ID, j.DeadlineS)
		}
		if j.Origin != "" && !names[j.Origin] {
			return fmt.Errorf("region: job %q origin %q is not a registered region", j.ID, j.Origin)
		}
	}
	m := opts.Migration
	if math.IsNaN(m.DowntimeS) || m.DowntimeS < 0 || math.IsNaN(m.EnergyJ) || m.EnergyJ < 0 {
		return fmt.Errorf("region: migration cost must be non-negative, got %+v", m)
	}
	return nil
}

// PhaseShiftedPair returns the bundled two-region demo fleet: "west" on
// the bundled diurnal trace (midday solar valley) and "east" on the
// same trace rotated by 12 hours (valley at west's midnight) — two
// datacenters whose clean windows are maximally out of phase, the
// canonical case where chasing valleys across regions beats any single
// placement.
func PhaseShiftedPair(gpusEach int) []Region {
	west := grid.Diurnal24h()
	west.Name = "west"
	east := grid.Diurnal24h()
	east.Name = "east"
	n := len(east.Intervals)
	rot := make([]grid.Interval, n)
	for i := range east.Intervals {
		src := east.Intervals[(i+n/2)%n]
		rot[i] = grid.Interval{
			StartS:         east.Intervals[i].StartS,
			EndS:           east.Intervals[i].EndS,
			CarbonGPerKWh:  src.CarbonGPerKWh,
			PriceUSDPerKWh: src.PriceUSDPerKWh,
			CapW:           src.CapW,
		}
	}
	east.Intervals = rot
	return []Region{
		{Name: "west", GPUs: gpusEach, Signal: west},
		{Name: "east", GPUs: gpusEach, Signal: east},
	}
}
