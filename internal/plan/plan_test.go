package plan_test

import (
	"math"
	"testing"

	"perseus/internal/fleet"
	"perseus/internal/forecast"
	"perseus/internal/frontier"
	"perseus/internal/grid"
	"perseus/internal/plan"
	"perseus/internal/region"
)

func TestParseObjective(t *testing.T) {
	for s, want := range map[string]plan.Objective{
		"":       plan.ObjectiveCarbon,
		"carbon": plan.ObjectiveCarbon,
		"cost":   plan.ObjectiveCost,
		"energy": plan.ObjectiveEnergy,
	} {
		got, err := plan.ParseObjective(s)
		if err != nil || got != want {
			t.Errorf("ParseObjective(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := plan.ParseObjective("vibes"); err == nil {
		t.Error("unknown objective accepted")
	}
}

func TestRequestValidate(t *testing.T) {
	good := plan.Request{Target: 10, DeadlineS: 100, Quantile: 0.9, CapW: 500}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for name, req := range map[string]plan.Request{
		"zero target":      {},
		"negative target":  {Target: -1},
		"infinite target":  {Target: math.Inf(1)},
		"NaN deadline":     {Target: 1, DeadlineS: math.NaN()},
		"infinite dl":      {Target: 1, DeadlineS: math.Inf(1)},
		"negative dl":      {Target: 1, DeadlineS: -1},
		"bad objective":    {Target: 1, Objective: "vibes"},
		"quantile too big": {Target: 1, Quantile: 1},
		"quantile < 0":     {Target: 1, Quantile: -0.1},
		"NaN cap":          {Target: 1, CapW: math.NaN()},
		"negative cap":     {Target: 1, CapW: -2},
	} {
		if err := req.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestResolveDeadline(t *testing.T) {
	r := plan.Request{Target: 1}
	if d, err := r.ResolveDeadline(3600); err != nil || d != 3600 {
		t.Fatalf("default deadline = %v, %v", d, err)
	}
	r.DeadlineS = 1800
	if d, err := r.ResolveDeadline(3600); err != nil || d != 1800 {
		t.Fatalf("explicit deadline = %v, %v", d, err)
	}
	r.DeadlineS = 3601
	if _, err := r.ResolveDeadline(3600); err == nil {
		t.Fatal("deadline beyond horizon accepted")
	}
}

func TestRequestDefaults(t *testing.T) {
	var r plan.Request
	if r.Scale() != 1 {
		t.Errorf("zero PowerScale should resolve to 1, got %v", r.Scale())
	}
	if r.PlanQuantile() != 0.5 {
		t.Errorf("zero Quantile should resolve to 0.5, got %v", r.PlanQuantile())
	}
	r.PowerScale, r.Quantile = 4, 0.9
	if r.Scale() != 4 || r.PlanQuantile() != 0.9 {
		t.Errorf("explicit values not preserved: %v, %v", r.Scale(), r.PlanQuantile())
	}
}

func TestAccount(t *testing.T) {
	a := plan.Account{EnergyJ: 1, CarbonG: 2, CostUSD: 3}
	a.Accumulate(plan.Account{EnergyJ: 10, CarbonG: 20, CostUSD: 30})
	if a.EnergyJ != 11 || a.CarbonG != 22 || a.CostUSD != 33 {
		t.Fatalf("accumulate: %+v", a)
	}
	for obj, want := range map[plan.Objective]float64{
		plan.ObjectiveEnergy: 11,
		plan.ObjectiveCarbon: 22,
		plan.ObjectiveCost:   33,
		"":                   22, // default = carbon
	} {
		if got := a.Total(obj); got != want {
			t.Errorf("Total(%q) = %v, want %v", obj, got, want)
		}
	}
	p := plan.Predicted{PredCarbonG: 1, PredCostUSD: 2}
	p.Accumulate(plan.Predicted{PredCarbonG: 3, PredCostUSD: 4})
	if p.PredCarbonG != 4 || p.PredCostUSD != 6 {
		t.Fatalf("predicted accumulate: %+v", p)
	}
}

// convexTable builds a small convex E(t) frontier table, the family
// every solver's optimality argument assumes.
func convexTable() *frontier.LookupTable {
	lt := &frontier.LookupTable{Unit: 0.01, TminUnits: 80, TStarUnits: 120}
	for u := int64(80); u <= 120; u++ {
		t := float64(u) * lt.Unit
		lt.Points = append(lt.Points, frontier.TablePoint{
			TimeUnits: u, Energy: 3000 + 120/t,
		})
	}
	return lt
}

func flatSignal(name string, carbon float64) *grid.Signal {
	s := &grid.Signal{Name: name}
	for k := 0; k < 4; k++ {
		s.Intervals = append(s.Intervals, grid.Interval{
			StartS: float64(k) * 900, EndS: float64(k+1) * 900,
			CarbonGPerKWh: carbon, PriceUSDPerKWh: 0.1,
		})
	}
	return s
}

// TestPlannersShareOneContract is the unification check the package
// exists for: the grid temporal planner, the joint multi-region
// planner, the forecast-driven MPC controller, and the fleet power-cap
// allocator all solve the same plan.Request through plan.Planner and
// summarize into the same surface.
func TestPlannersShareOneContract(t *testing.T) {
	lt := convexTable()
	sig := flatSignal("flat", 300)
	target := 0.5 * sig.Horizon() / lt.TStar()
	req := plan.Request{Target: target, DeadlineS: sig.Horizon(), CapW: 1e6}

	planners := []plan.Planner{
		&grid.Planner{Table: lt, Signal: sig},
		&region.Planner{
			Regions: []region.Region{{Name: "a", Signal: sig}},
			Jobs:    []region.Job{{ID: "train", Table: lt}},
		},
		&forecast.Planner{
			Table:    lt,
			Provider: &forecast.Perfect{Truth: sig},
			Truth:    sig,
			Replan:   true,
		},
		&fleet.Planner{Jobs: []fleet.Job{{ID: "train", Table: lt}}},
	}
	seen := map[string]bool{}
	for _, p := range planners {
		if seen[p.Name()] {
			t.Fatalf("duplicate planner name %q", p.Name())
		}
		seen[p.Name()] = true
		res, err := p.Plan(req)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		sum := res.Summarize()
		if !sum.Feasible {
			t.Fatalf("%s: infeasible under an easy request: %+v", p.Name(), sum)
		}
		if p.Name() == "fleet" {
			if sum.PowerW <= 0 {
				t.Fatalf("fleet summary has no power: %+v", sum)
			}
			continue
		}
		if math.Abs(sum.Iterations-target) > 1e-6*(1+target) {
			t.Fatalf("%s: iterations %v, want %v", p.Name(), sum.Iterations, target)
		}
		if sum.EnergyJ <= 0 || sum.CarbonG <= 0 || sum.CostUSD <= 0 {
			t.Fatalf("%s: empty account: %+v", p.Name(), sum)
		}
		if sum.Plans < 1 {
			t.Fatalf("%s: plans %d", p.Name(), sum.Plans)
		}
	}
	// The grid and region planners solve the same single-region problem:
	// their realized carbon agrees.
	g, _ := planners[0].Plan(req)
	r, _ := planners[1].Plan(req)
	if math.Abs(g.Summarize().CarbonG-r.Summarize().CarbonG) > 1e-6*(1+g.Summarize().CarbonG) {
		t.Fatalf("grid %v vs region %v carbon on the same problem",
			g.Summarize().CarbonG, r.Summarize().CarbonG)
	}

	// A request every layer must reject.
	for _, p := range planners[:3] {
		if _, err := p.Plan(plan.Request{Target: -1}); err == nil {
			t.Errorf("%s: negative target accepted", p.Name())
		}
	}
	if _, err := planners[3].Plan(plan.Request{CapW: math.NaN()}); err == nil {
		t.Error("fleet: NaN cap accepted")
	}
}
