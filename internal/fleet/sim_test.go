package fleet

import (
	"math"
	"testing"

	"perseus/internal/cluster"
	"perseus/internal/dag"
	"perseus/internal/frontier"
	"perseus/internal/gpu"
	"perseus/internal/grid"
	"perseus/internal/model"
	"perseus/internal/partition"
	"perseus/internal/profile"
	"perseus/internal/sched"
)

// buildSimJob characterizes a small real workload into a SimJob.
func buildSimJob(t *testing.T, id string, stages, micro int) *SimJob {
	t.Helper()
	m, err := model.GPT3("1.3b")
	if err != nil {
		t.Fatal(err)
	}
	g := gpu.A100PCIe
	part, err := partition.MinImbalance(m.LayerCosts(), stages)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profile.FromWorkload(profile.Workload{
		Model: m, GPU: g, Stages: stages, Chunks: 1,
		Partition: part.Boundaries, MicrobatchSize: 4, TensorParallel: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.ByName("1f1b", stages, micro, 1)
	if err != nil {
		t.Fatal(err)
	}
	graph, err := dag.Build(s, func(op sched.Op) int64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	front, err := frontier.Characterize(graph, prof, frontier.Options{Unit: 5e-3})
	if err != nil {
		t.Fatal(err)
	}
	return &SimJob{
		Job:  Job{ID: id, Table: front.Table()},
		Spec: cluster.Spec{Schedule: s, Profile: prof},
	}
}

func TestReplayScenario(t *testing.T) {
	a := buildSimJob(t, "gpt-a", 2, 4)
	b := buildSimJob(t, "gpt-b", 2, 3)

	// The cap forces loss: set it at 90% of the two jobs' uncapped draw.
	uncapped := Allocate([]Job{a.Job, b.Job}, 0).PowerW
	capW := 0.9 * uncapped

	series, err := Replay(Scenario{
		Horizon: 600,
		Events: []Event{
			{At: 0, Kind: EventArrive, Job: a},
			{At: 100, Kind: EventArrive, Job: b},
			{At: 200, Kind: EventSetCap, CapW: capW},
			{At: 300, Kind: EventStraggler, JobID: "gpt-a", Factor: 1.3},
			{At: 400, Kind: EventStraggler, JobID: "gpt-a", Factor: 1},
			{At: 500, Kind: EventDepart, JobID: "gpt-b"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Segments partition [0, horizon] at the event times.
	wantBounds := []float64{0, 100, 200, 300, 400, 500, 600}
	if len(series.Segments) != len(wantBounds)-1 {
		t.Fatalf("got %d segments, want %d", len(series.Segments), len(wantBounds)-1)
	}
	for i, seg := range series.Segments {
		if seg.Start != wantBounds[i] || seg.End != wantBounds[i+1] {
			t.Fatalf("segment %d spans [%v,%v], want [%v,%v]", i, seg.Start, seg.End, wantBounds[i], wantBounds[i+1])
		}
	}

	segs := series.Segments
	if len(segs[0].Jobs) != 1 || len(segs[1].Jobs) != 2 || len(segs[5].Jobs) != 1 {
		t.Fatalf("job counts per segment: %d,%d,...,%d, want 1,2,...,1",
			len(segs[0].Jobs), len(segs[1].Jobs), len(segs[5].Jobs))
	}
	if segs[5].Jobs[0].ID != "gpt-a" {
		t.Fatalf("after departure the remaining job is %s, want gpt-a", segs[5].Jobs[0].ID)
	}

	// Uncapped segments run at each job's Tmin point with no allocation
	// pressure; the capped segment keeps model power under the cap.
	if segs[1].CapW != 0 || segs[1].Jobs[0].Point != 0 {
		t.Fatalf("uncapped segment: cap %v point %d", segs[1].CapW, segs[1].Jobs[0].Point)
	}
	if segs[2].CapW != capW || !segs[2].Feasible {
		t.Fatalf("capped segment: cap %v feasible %v", segs[2].CapW, segs[2].Feasible)
	}
	if segs[2].AllocPowerW > capW+1e-9 {
		t.Fatalf("capped segment model power %v exceeds cap %v", segs[2].AllocPowerW, capW)
	}
	if segs[2].AllocPowerW >= segs[1].AllocPowerW {
		t.Fatalf("cap did not reduce model power: %v -> %v", segs[1].AllocPowerW, segs[2].AllocPowerW)
	}

	// Straggler onset drags gpt-a's simulated iteration time by ~1.3×
	// and recovery restores it.
	healthy := segs[2].Jobs[0].IterTime
	dragged := segs[3].Jobs[0].IterTime
	if segs[3].Jobs[0].StragglerFactor != 1.3 {
		t.Fatalf("straggler factor %v, want 1.3", segs[3].Jobs[0].StragglerFactor)
	}
	if dragged < healthy {
		t.Fatalf("straggler iteration time %v not above healthy %v", dragged, healthy)
	}
	if recovered := segs[4].Jobs[0].IterTime; recovered != healthy {
		t.Fatalf("recovered iteration time %v, want %v", recovered, healthy)
	}

	// Totals: both jobs progressed; fleet energy is the power integral.
	if len(series.Totals) != 2 {
		t.Fatalf("got %d totals, want 2", len(series.Totals))
	}
	for _, tot := range series.Totals {
		if tot.Iterations <= 0 || tot.EnergyJ <= 0 || tot.ActiveS <= 0 {
			t.Fatalf("degenerate total %+v", tot)
		}
	}
	if series.Totals[1].ActiveS != 400 {
		t.Fatalf("gpt-b active %vs, want 400", series.Totals[1].ActiveS)
	}
	var sum float64
	for _, seg := range series.Segments {
		sum += seg.PowerW * (seg.End - seg.Start)
	}
	if math.Abs(series.EnergyJ-sum) > 1e-6*sum {
		t.Fatalf("fleet energy %v != power integral %v", series.EnergyJ, sum)
	}
	if series.PeakPowerW <= 0 {
		t.Fatal("no peak power recorded")
	}
}

// TestReplaySignal drives the fleet from a grid trace: interval edges
// become segment boundaries, the interval cap throttles the fleet while
// in force, and segment energy is accounted into carbon and cost at the
// interval rates.
func TestReplaySignal(t *testing.T) {
	a := buildSimJob(t, "gpt-a", 2, 4)
	b := buildSimJob(t, "gpt-b", 2, 3)
	uncapped := Allocate([]Job{a.Job, b.Job}, 0).PowerW

	sig := &grid.Signal{Intervals: []grid.Interval{
		{StartS: 0, EndS: 100, CarbonGPerKWh: 500, PriceUSDPerKWh: 0.2},
		{StartS: 100, EndS: 200, CarbonGPerKWh: 200, PriceUSDPerKWh: 0.05, CapW: 0.92 * uncapped},
		{StartS: 200, EndS: 300, CarbonGPerKWh: 400, PriceUSDPerKWh: 0.1},
	}}
	series, err := Replay(Scenario{
		Horizon: 450, // 1.5 cycles: the trace repeats
		Signal:  sig,
		Events: []Event{
			{At: 0, Kind: EventArrive, Job: a},
			{At: 0, Kind: EventArrive, Job: b},
			{At: 250, Kind: EventSetCap, CapW: 0.97 * uncapped},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Boundaries at interval edges (100, 200, 300, 400 cyclically) plus
	// the cap event at 250.
	wantBounds := []float64{0, 100, 200, 250, 300, 400, 450}
	if len(series.Segments) != len(wantBounds)-1 {
		t.Fatalf("got %d segments, want %d", len(series.Segments), len(wantBounds)-1)
	}
	for i, seg := range series.Segments {
		if seg.Start != wantBounds[i] || seg.End != wantBounds[i+1] {
			t.Fatalf("segment %d spans [%v,%v], want [%v,%v]", i, seg.Start, seg.End, wantBounds[i], wantBounds[i+1])
		}
	}

	segs := series.Segments
	// Segment 0: no cap, dirty interval rates echoed.
	if segs[0].CapW != 0 || segs[0].CarbonGPerKWh != 500 {
		t.Fatalf("segment 0: cap %v carbon rate %v, want 0 and 500", segs[0].CapW, segs[0].CarbonGPerKWh)
	}
	// Segment 1: the interval cap is in force and binds the allocation.
	if segs[1].CapW != 0.92*uncapped || !segs[1].Feasible {
		t.Fatalf("segment 1: cap %v feasible %v", segs[1].CapW, segs[1].Feasible)
	}
	if segs[1].AllocPowerW > segs[1].CapW+1e-9 {
		t.Fatalf("segment 1 model power %v exceeds the interval cap %v", segs[1].AllocPowerW, segs[1].CapW)
	}
	// Segments 2-3: the uncapped interval restores the event cap (none
	// until t=250, then 0.97× uncapped).
	if segs[2].CapW != 0 {
		t.Fatalf("segment 2 cap %v, want event cap 0", segs[2].CapW)
	}
	if segs[3].CapW != 0.97*uncapped {
		t.Fatalf("segment 3 cap %v, want event cap %v", segs[3].CapW, 0.97*uncapped)
	}
	// Segments 4-5 wrap into the trace's second cycle: [300,400) is
	// interval 0 again (event cap still in force), and [400,450) is
	// interval 1, whose cap overrides the event cap once more.
	if segs[4].CapW != 0.97*uncapped || segs[4].CarbonGPerKWh != 500 {
		t.Fatalf("segment 4 (cyclic): cap %v carbon rate %v", segs[4].CapW, segs[4].CarbonGPerKWh)
	}
	if segs[5].CapW != 0.92*uncapped || segs[5].CarbonGPerKWh != 200 {
		t.Fatalf("segment 5 (cyclic): cap %v carbon rate %v", segs[5].CapW, segs[5].CarbonGPerKWh)
	}

	// Accounting: each segment's carbon is energy × rate, and the
	// series totals are the segment sums.
	var carbon, cost float64
	for _, seg := range segs {
		wantC := seg.PowerW * (seg.End - seg.Start) / grid.JoulesPerKWh * seg.CarbonGPerKWh
		if math.Abs(seg.CarbonG-wantC) > 1e-6*(1+wantC) {
			t.Fatalf("segment [%v,%v) carbon %v, want %v", seg.Start, seg.End, seg.CarbonG, wantC)
		}
		var jobC float64
		for _, sj := range seg.Jobs {
			jobC += sj.CarbonG
		}
		if math.Abs(jobC-seg.CarbonG) > 1e-6*(1+seg.CarbonG) {
			t.Fatalf("segment job carbon %v != segment carbon %v", jobC, seg.CarbonG)
		}
		carbon += seg.CarbonG
		cost += seg.CostUSD
	}
	if math.Abs(series.CarbonG-carbon) > 1e-9*(1+carbon) || carbon <= 0 {
		t.Fatalf("series carbon %v, want positive segment sum %v", series.CarbonG, carbon)
	}
	if math.Abs(series.CostUSD-cost) > 1e-9*(1+cost) || cost <= 0 {
		t.Fatalf("series cost %v, want positive segment sum %v", series.CostUSD, cost)
	}
	var totC float64
	for _, tot := range series.Totals {
		totC += tot.CarbonG
	}
	if math.Abs(totC-carbon) > 1e-6*(1+carbon) {
		t.Fatalf("job totals carbon %v != series carbon %v", totC, carbon)
	}
}

func TestReplayErrors(t *testing.T) {
	a := buildSimJob(t, "a", 2, 3)
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"nonpositive horizon", Scenario{Horizon: 0}},
		{"event beyond horizon", Scenario{Horizon: 10, Events: []Event{{At: 11, Kind: EventSetCap}}}},
		{"negative event time", Scenario{Horizon: 10, Events: []Event{{At: -1, Kind: EventSetCap}}}},
		{"arrival without job", Scenario{Horizon: 10, Events: []Event{{At: 0, Kind: EventArrive}}}},
		{"unknown departure", Scenario{Horizon: 10, Events: []Event{{At: 0, Kind: EventDepart, JobID: "x"}}}},
		{"unknown straggler", Scenario{Horizon: 10, Events: []Event{{At: 0, Kind: EventStraggler, JobID: "x", Factor: 2}}}},
		{"negative scenario cap", Scenario{Horizon: 10, CapW: -1}},
		{"nan cap event", Scenario{Horizon: 10, Events: []Event{{At: 0, Kind: EventSetCap, CapW: math.NaN()}}}},
		{"invalid signal", Scenario{Horizon: 10, Signal: &grid.Signal{}}},
		{"duplicate arrival", Scenario{Horizon: 10, Events: []Event{
			{At: 0, Kind: EventArrive, Job: a},
			{At: 1, Kind: EventArrive, Job: a},
		}}},
	}
	for _, tc := range cases {
		if _, err := Replay(tc.sc); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestEventKindString(t *testing.T) {
	for k, want := range map[EventKind]string{
		EventArrive: "arrive", EventDepart: "depart",
		EventStraggler: "straggler", EventSetCap: "set-cap",
		EventKind(9): "event(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("EventKind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

// TestReplayRegions drives a two-region scenario: jobs placed per
// region are allocated and accounted independently, a migration inserts
// a checkpoint-transfer pause plus transfer energy at the destination's
// rates, and per-region interval caps bind only their own region.
func TestReplayRegions(t *testing.T) {
	a := buildSimJob(t, "gpt-a", 2, 4)
	b := buildSimJob(t, "gpt-b", 2, 3)
	soloA := Allocate([]Job{a.Job}, 0).PowerW

	dirty := &grid.Signal{Name: "dirty", Intervals: []grid.Interval{
		{StartS: 0, EndS: 600, CarbonGPerKWh: 500, PriceUSDPerKWh: 0.2},
	}}
	clean := &grid.Signal{Name: "clean", Intervals: []grid.Interval{
		{StartS: 0, EndS: 300, CarbonGPerKWh: 100, PriceUSDPerKWh: 0.05},
		{StartS: 300, EndS: 600, CarbonGPerKWh: 100, PriceUSDPerKWh: 0.05, CapW: 0.9 * soloA},
	}}
	series, err := Replay(Scenario{
		Horizon:            600,
		Regions:            []SimRegion{{Name: "dirty", Signal: dirty}, {Name: "clean", Signal: clean}},
		MigrationDowntimeS: 50,
		MigrationEnergyJ:   grid.JoulesPerKWh, // 1 kWh
		Events: []Event{
			{At: 0, Kind: EventArrive, Job: a},
			{At: 0, Kind: EventPlace, JobID: "gpt-a", Region: "dirty"},
			{At: 0, Kind: EventArrive, Job: b},
			{At: 200, Kind: EventPlace, JobID: "gpt-a", Region: "clean"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Boundaries: migration at 200, pause end at 250, clean region's
	// interval edge at 300.
	wantBounds := []float64{0, 200, 250, 300, 600}
	if len(series.Segments) != len(wantBounds)-1 {
		t.Fatalf("got %d segments (%+v), want %d", len(series.Segments), series.Segments, len(wantBounds)-1)
	}
	for i, seg := range series.Segments {
		if seg.Start != wantBounds[i] || seg.End != wantBounds[i+1] {
			t.Fatalf("segment %d spans [%v,%v], want [%v,%v]", i, seg.Start, seg.End, wantBounds[i], wantBounds[i+1])
		}
	}
	segs := series.Segments

	// Segment 0: gpt-a in dirty at dirty rates; gpt-b unplaced, no rates.
	jobA, jobB := segs[0].Jobs[0], segs[0].Jobs[1]
	if jobB.ID == "gpt-a" {
		jobA, jobB = jobB, jobA
	}
	if jobA.Region != "dirty" || jobA.Migrating {
		t.Fatalf("segment 0 gpt-a %+v", jobA)
	}
	wantC := jobA.EnergyJ / grid.JoulesPerKWh * 500
	if math.Abs(jobA.CarbonG-wantC) > 1e-6*(1+wantC) {
		t.Fatalf("segment 0 gpt-a carbon %v, want %v", jobA.CarbonG, wantC)
	}
	if jobB.Region != "" || jobB.CarbonG != 0 || jobB.Iterations <= 0 {
		t.Fatalf("segment 0 unplaced gpt-b %+v", jobB)
	}

	// Segment 1: gpt-a migrating — zero power, zero progress.
	var mig SegmentJob
	for _, sj := range segs[1].Jobs {
		if sj.ID == "gpt-a" {
			mig = sj
		}
	}
	if !mig.Migrating || mig.Region != "clean" || mig.PowerW != 0 || mig.Iterations != 0 {
		t.Fatalf("migration segment job %+v", mig)
	}

	// Segment 2: gpt-a running in clean at clean rates.
	var post SegmentJob
	for _, sj := range segs[2].Jobs {
		if sj.ID == "gpt-a" {
			post = sj
		}
	}
	if post.Migrating || post.Region != "clean" || post.Iterations <= 0 {
		t.Fatalf("post-migration job %+v", post)
	}
	wantC = post.EnergyJ / grid.JoulesPerKWh * 100
	if math.Abs(post.CarbonG-wantC) > 1e-6*(1+wantC) {
		t.Fatalf("post-migration carbon %v, want %v", post.CarbonG, wantC)
	}

	// Segment 3: the clean region's interval cap binds gpt-a (the only
	// job there) below its uncapped draw.
	var capped SegmentJob
	for _, sj := range segs[3].Jobs {
		if sj.ID == "gpt-a" {
			capped = sj
		}
	}
	if capped.AllocPowerW > 0.9*soloA+1e-9 {
		t.Fatalf("capped region allocation %v exceeds interval cap %v", capped.AllocPowerW, 0.9*soloA)
	}
	if capped.Point == 0 {
		t.Fatal("interval cap did not move gpt-a off its Tmin point")
	}

	// Migration transfer energy: 1 kWh at clean rates (100 g/kWh,
	// $0.05/kWh) lands in gpt-a's totals and the series totals.
	var totA *JobTotal
	for i := range series.Totals {
		if series.Totals[i].ID == "gpt-a" {
			totA = &series.Totals[i]
		}
	}
	var runC, runE float64
	for _, seg := range segs {
		for _, sj := range seg.Jobs {
			if sj.ID == "gpt-a" {
				runC += sj.CarbonG
				runE += sj.EnergyJ
			}
		}
	}
	if math.Abs(totA.CarbonG-(runC+100)) > 1e-6*(1+runC) {
		t.Fatalf("gpt-a total carbon %v, want run %v + migration 100", totA.CarbonG, runC)
	}
	if math.Abs(totA.EnergyJ-(runE+grid.JoulesPerKWh)) > 1e-6*(1+runE) {
		t.Fatalf("gpt-a total energy %v, want run %v + migration %v", totA.EnergyJ, runE, grid.JoulesPerKWh)
	}
	var segPowerE float64
	for _, seg := range segs {
		segPowerE += seg.PowerW * (seg.End - seg.Start)
	}
	if math.Abs(series.EnergyJ-(segPowerE+grid.JoulesPerKWh)) > 1e-6*(1+segPowerE) {
		t.Fatalf("series energy %v, want power integral %v + migration energy", series.EnergyJ, segPowerE)
	}

	// Re-placing a job in its current region is a free no-op.
	again, err := Replay(Scenario{
		Horizon: 100,
		Regions: []SimRegion{{Name: "dirty", Signal: dirty}},
		Events: []Event{
			{At: 0, Kind: EventArrive, Job: buildSimJob(t, "solo", 2, 3)},
			{At: 0, Kind: EventPlace, JobID: "solo", Region: "dirty"},
			{At: 50, Kind: EventPlace, JobID: "solo", Region: "dirty"},
		},
		MigrationDowntimeS: 30,
		MigrationEnergyJ:   1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range again.Segments {
		for _, sj := range seg.Jobs {
			if sj.Migrating {
				t.Fatalf("no-op re-placement migrated: %+v", seg)
			}
		}
	}
}

// TestReplayRegionErrors covers the region-specific validation paths.
func TestReplayRegionErrors(t *testing.T) {
	a := buildSimJob(t, "a", 2, 3)
	sig := &grid.Signal{Intervals: []grid.Interval{{StartS: 0, EndS: 100, CarbonGPerKWh: 100}}}
	regions := []SimRegion{{Name: "r", Signal: sig}}
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"unnamed region", Scenario{Horizon: 10, Regions: []SimRegion{{Signal: sig}}}},
		{"duplicate region", Scenario{Horizon: 10, Regions: []SimRegion{{Name: "r", Signal: sig}, {Name: "r", Signal: sig}}}},
		{"region without signal", Scenario{Horizon: 10, Regions: []SimRegion{{Name: "r"}}}},
		{"invalid region signal", Scenario{Horizon: 10, Regions: []SimRegion{{Name: "r", Signal: &grid.Signal{}}}}},
		{"negative migration downtime", Scenario{Horizon: 10, Regions: regions, MigrationDowntimeS: -1}},
		{"negative migration energy", Scenario{Horizon: 10, Regions: regions, MigrationEnergyJ: -1}},
		{"place without regions", Scenario{Horizon: 10, Events: []Event{{At: 0, Kind: EventPlace, JobID: "a", Region: "r"}}}},
		{"place unknown job", Scenario{Horizon: 10, Regions: regions, Events: []Event{{At: 0, Kind: EventPlace, JobID: "x", Region: "r"}}}},
		{"place unknown region", Scenario{Horizon: 10, Regions: regions, Events: []Event{
			{At: 0, Kind: EventArrive, Job: a},
			{At: 0, Kind: EventPlace, JobID: "a", Region: "nope"},
		}}},
	}
	for _, tc := range cases {
		if _, err := Replay(tc.sc); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if got := EventPlace.String(); got != "place" {
		t.Errorf("EventPlace.String() = %q", got)
	}
}

// TestReplayForecastDriven checks the forecast/truth split: the replay
// sees only the forecast signal (decisions and predicted accounting),
// while realized carbon and cost accrue at the truth's rates. With the
// same boundary structure and no caps, the realized totals must equal
// a plain truth-driven replay's and the predicted totals a plain
// forecast-driven one's.
func TestReplayForecastDriven(t *testing.T) {
	a := buildSimJob(t, "gpt-a", 2, 4)
	truth := &grid.Signal{Name: "truth", Intervals: []grid.Interval{
		{StartS: 0, EndS: 100, CarbonGPerKWh: 500, PriceUSDPerKWh: 0.2},
		{StartS: 100, EndS: 200, CarbonGPerKWh: 200, PriceUSDPerKWh: 0.05},
		{StartS: 200, EndS: 300, CarbonGPerKWh: 400, PriceUSDPerKWh: 0.1},
	}}
	forecast := &grid.Signal{Name: "forecast", Intervals: []grid.Interval{
		{StartS: 0, EndS: 100, CarbonGPerKWh: 300, PriceUSDPerKWh: 0.1},
		{StartS: 100, EndS: 200, CarbonGPerKWh: 350, PriceUSDPerKWh: 0.15},
		{StartS: 200, EndS: 300, CarbonGPerKWh: 250, PriceUSDPerKWh: 0.07},
	}}
	events := []Event{{At: 0, Kind: EventArrive, Job: a}}
	run := func(sig, tr *grid.Signal) *Series {
		t.Helper()
		series, err := Replay(Scenario{Horizon: 300, Signal: sig, Truth: tr, Events: events})
		if err != nil {
			t.Fatal(err)
		}
		return series
	}
	split := run(forecast, truth)
	realized := run(truth, nil)
	predicted := run(forecast, nil)

	if math.Abs(split.CarbonG-realized.CarbonG) > 1e-9*(1+realized.CarbonG) ||
		math.Abs(split.CostUSD-realized.CostUSD) > 1e-12*(1+realized.CostUSD) {
		t.Fatalf("realized totals %v/%v, want truth-driven %v/%v",
			split.CarbonG, split.CostUSD, realized.CarbonG, realized.CostUSD)
	}
	if math.Abs(split.PredCarbonG-predicted.CarbonG) > 1e-9*(1+predicted.CarbonG) ||
		math.Abs(split.PredCostUSD-predicted.CostUSD) > 1e-12*(1+predicted.CostUSD) {
		t.Fatalf("predicted totals %v/%v, want forecast-driven %v/%v",
			split.PredCarbonG, split.PredCostUSD, predicted.CarbonG, predicted.CostUSD)
	}
	if math.Abs(split.EnergyJ-realized.EnergyJ) > 1e-6*(1+realized.EnergyJ) {
		t.Fatalf("energy %v, want %v", split.EnergyJ, realized.EnergyJ)
	}
	// Plain replays carry no predicted account.
	if realized.PredCarbonG != 0 || predicted.PredCarbonG != 0 {
		t.Fatalf("plain replays should have zero predicted accrual")
	}
	// Per-job totals reconcile the same way.
	if math.Abs(split.Totals[0].CarbonG-realized.Totals[0].CarbonG) > 1e-9*(1+realized.Totals[0].CarbonG) ||
		math.Abs(split.Totals[0].PredCarbonG-predicted.Totals[0].CarbonG) > 1e-9*(1+predicted.Totals[0].CarbonG) {
		t.Fatalf("per-job reconciliation broken: %+v", split.Totals[0])
	}
	// Segments echo the operator's (forecast) view.
	if split.Segments[0].CarbonGPerKWh != 300 {
		t.Fatalf("segment 0 echoes %v, want the forecast's 300", split.Segments[0].CarbonGPerKWh)
	}

	// A truth needs a signal to forecast from, and must be valid.
	if _, err := Replay(Scenario{Horizon: 300, Truth: truth, Events: events}); err == nil {
		t.Fatal("truth without a signal should error")
	}
	bad := &grid.Signal{Intervals: []grid.Interval{{StartS: 5, EndS: 10}}}
	if _, err := Replay(Scenario{Horizon: 300, Signal: forecast, Truth: bad, Events: events}); err == nil {
		t.Fatal("invalid truth should error")
	}
}

// TestReplayRegionForecastDriven checks the per-region forecast/truth
// split, including the migration transfer energy being realized at the
// truth's rates and predicted at the forecast's.
func TestReplayRegionForecastDriven(t *testing.T) {
	a := buildSimJob(t, "gpt-a", 2, 4)
	truthW := &grid.Signal{Name: "tw", Intervals: []grid.Interval{
		{StartS: 0, EndS: 150, CarbonGPerKWh: 450, PriceUSDPerKWh: 0.2},
		{StartS: 150, EndS: 300, CarbonGPerKWh: 100, PriceUSDPerKWh: 0.04},
	}}
	fcW := &grid.Signal{Name: "fw", Intervals: []grid.Interval{
		{StartS: 0, EndS: 150, CarbonGPerKWh: 400, PriceUSDPerKWh: 0.18},
		{StartS: 150, EndS: 300, CarbonGPerKWh: 150, PriceUSDPerKWh: 0.06},
	}}
	truthE := &grid.Signal{Name: "te", Intervals: []grid.Interval{
		{StartS: 0, EndS: 300, CarbonGPerKWh: 360, PriceUSDPerKWh: 0.12},
	}}
	fcE := &grid.Signal{Name: "fe", Intervals: []grid.Interval{
		{StartS: 0, EndS: 300, CarbonGPerKWh: 240, PriceUSDPerKWh: 0.09},
	}}
	series, err := Replay(Scenario{
		Horizon: 300,
		Regions: []SimRegion{
			{Name: "west", Signal: fcW, Truth: truthW},
			{Name: "east", Signal: fcE, Truth: truthE},
		},
		MigrationEnergyJ: grid.JoulesPerKWh, // 1 kWh for easy arithmetic
		Events: []Event{
			{At: 0, Kind: EventArrive, Job: a},
			{At: 0, Kind: EventPlace, JobID: "gpt-a", Region: "west"},
			{At: 150, Kind: EventPlace, JobID: "gpt-a", Region: "east"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	tot := series.Totals[0]
	// Migration at t=150 into east: 1 kWh realized at truth 360 g,
	// predicted at forecast 240 g. Segment energy realized at the
	// region truths.
	seg0 := series.Segments[0].Jobs[0]
	wantRealized := seg0.EnergyJ/grid.JoulesPerKWh*450 + 360 +
		series.Segments[1].Jobs[0].EnergyJ/grid.JoulesPerKWh*360
	wantPredicted := seg0.EnergyJ/grid.JoulesPerKWh*400 + 240 +
		series.Segments[1].Jobs[0].EnergyJ/grid.JoulesPerKWh*240
	if math.Abs(tot.CarbonG-wantRealized) > 1e-6*(1+wantRealized) {
		t.Fatalf("realized carbon %v, want %v", tot.CarbonG, wantRealized)
	}
	if math.Abs(tot.PredCarbonG-wantPredicted) > 1e-6*(1+wantPredicted) {
		t.Fatalf("predicted carbon %v, want %v", tot.PredCarbonG, wantPredicted)
	}
}
