package experiments

import (
	"fmt"

	"perseus/internal/cluster"
	"perseus/internal/gpu"
)

// ScalePoint is one row of paper Table 5: strong scaling keeps the global
// batch size at 1536 while growing the number of data-parallel pipelines,
// shrinking the per-pipeline microbatch count.
type ScalePoint struct {
	GPUs, Pipelines, Microbatches int
}

// Table5 returns the strong-scaling emulation grid (paper Table 5): each
// pipeline has tensor-parallel degree 8 and 8 pipeline stages.
func Table5() []ScalePoint {
	return []ScalePoint{
		{GPUs: 1024, Pipelines: 16, Microbatches: 96},
		{GPUs: 2048, Pipelines: 32, Microbatches: 48},
		{GPUs: 4096, Pipelines: 64, Microbatches: 24},
		{GPUs: 8192, Pipelines: 128, Microbatches: 12},
	}
}

// EmulationModels are the huge models of the large-scale emulation (§6.3).
var EmulationModels = []struct{ Display, Model string }{
	{"GPT-3 175B", "gpt3-175b"},
	{"Bloom 176B", "bloom-176b"},
}

// EmulationGPUs pair the display label of paper §6.3 with the GPU preset.
var EmulationGPUs = []*gpu.Model{gpu.A100SXM, gpu.A40}

// emulationConfig builds the workload config for one emulation cell.
func emulationConfig(display, modelName string, microbatches, pipelines int) WorkloadConfig {
	return WorkloadConfig{
		Display:        display,
		Model:          modelName,
		Stages:         8,
		MicrobatchSize: 1,
		Microbatches:   microbatches,
		DataParallel:   pipelines,
		TensorParallel: 8,
	}
}

// Table6 reproduces paper Table 6: Perseus's intrinsic energy bloat
// reduction (no stragglers) for GPT-3 175B and Bloom 176B as the
// per-pipeline microbatch count shrinks under strong scaling.
func Table6(sc Scale) (*Table, error) {
	grid := Table5()
	header := []string{"Model", "GPU"}
	for i := len(grid) - 1; i >= 0; i-- {
		header = append(header, fmt.Sprintf("%d mb", grid[i].Microbatches))
	}
	t := &Table{
		Title:  "Table 6: emulated intrinsic savings (%) vs per-pipeline microbatches",
		Header: header,
		Notes: []string{
			"strong scaling per Table 5; fewer microbatches -> larger warm-up/flush share -> larger savings (§6.3)",
			"the emulator underestimates real savings by ~19-22% because P_blocking is assumed constant (§6.3)",
		},
	}
	for _, em := range EmulationModels {
		for _, g := range EmulationGPUs {
			row := []string{em.Display, g.Name}
			for i := len(grid) - 1; i >= 0; i-- {
				cfg := emulationConfig(em.Display, em.Model, grid[i].Microbatches, 1)
				sys, err := BuildSystem(cfg, g, sc)
				if err != nil {
					return nil, err
				}
				res, err := sys.SimulatePlan(sys.PerseusPlan(0))
				if err != nil {
					return nil, err
				}
				row = append(row, pct(1-res.Energy/sys.Base.Energy))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// clusterStragglerSavings computes cluster-wide savings of Perseus (and
// EnvPipe-style fixed plans) in a DP cluster with one straggler pipeline.
// slow == 1 means no straggler (pure intrinsic reduction).
func clusterStragglerSavings(sys *System, pipelines int, slow float64, plan func(p int) cluster.Plan) (float64, error) {
	spec := sys.Spec
	spec.DataParallel = pipelines
	var stragglers []cluster.Straggler
	if slow > 1 {
		stragglers = []cluster.Straggler{{Pipeline: 0, Factor: slow}}
	}
	maxPlan := cluster.PlanAllMax(spec.Schedule, sys.GPU)
	base, err := cluster.Simulate(spec, maxPlan, stragglers)
	if err != nil {
		return 0, err
	}
	res, err := cluster.SimulateMulti(spec, plan, stragglers)
	if err != nil {
		return 0, err
	}
	return 1 - res.Energy/base.Energy, nil
}

// perseusClusterPlan builds the per-pipeline plan function: the straggler
// (pipeline 0) keeps the fastest schedule while all other pipelines run
// the schedule for the anticipated straggler iteration time.
func (sys *System) perseusClusterPlan(slow float64) (func(p int) cluster.Plan, error) {
	fastest := sys.PerseusPlan(0)
	if slow <= 1 {
		return func(int) cluster.Plan { return fastest }, nil
	}
	fastRes, err := sys.SimulatePlan(fastest)
	if err != nil {
		return nil, err
	}
	slowPlan := sys.PerseusPlan(fastRes.IterTime * slow)
	return func(p int) cluster.Plan {
		if p == 0 {
			return fastest
		}
		return slowPlan
	}, nil
}

// StragglerBreakdown returns the cluster-wide savings with and without a
// straggler of the given slowdown across `pipelines` data-parallel
// replicas — the two bars of paper Figure 7.
func (sys *System) StragglerBreakdown(pipelines int, slow float64) (intrinsic, both float64, err error) {
	planNo, err := sys.perseusClusterPlan(1)
	if err != nil {
		return 0, 0, err
	}
	intrinsic, err = clusterStragglerSavings(sys, pipelines, 1, planNo)
	if err != nil {
		return 0, 0, err
	}
	planStrag, err := sys.perseusClusterPlan(slow)
	if err != nil {
		return 0, 0, err
	}
	both, err = clusterStragglerSavings(sys, pipelines, slow, planStrag)
	return intrinsic, both, err
}

// Figure7 reproduces paper Figure 7: the intrinsic and intrinsic+extrinsic
// energy savings breakdown for the 175B/176B models with straggler
// slowdown 1.2 on 1,024 GPUs (16 pipelines), Perseus versus EnvPipe.
func Figure7(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Figure 7: savings breakdown, straggler slowdown 1.2, 1024 GPUs (16 pipelines)",
		Header: []string{"GPU", "Model", "System", "Intrinsic (%)", "Intrinsic+Extrinsic (%)"},
	}
	const pipelines = 16
	micro := Table5()[0].Microbatches
	for _, g := range EmulationGPUs {
		for _, em := range EmulationModels {
			cfg := emulationConfig(em.Display, em.Model, micro, 1)
			sys, err := BuildSystem(cfg, g, sc)
			if err != nil {
				return nil, err
			}
			// Perseus.
			planNoStrag, err := sys.perseusClusterPlan(1)
			if err != nil {
				return nil, err
			}
			intr, err := clusterStragglerSavings(sys, pipelines, 1, planNoStrag)
			if err != nil {
				return nil, err
			}
			planStrag, err := sys.perseusClusterPlan(1.2)
			if err != nil {
				return nil, err
			}
			both, err := clusterStragglerSavings(sys, pipelines, 1.2, planStrag)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{g.Name, em.Display, "Perseus", pct(intr), pct(both)})

			// EnvPipe: a fixed plan with no straggler reaction.
			eplan, err := envPipePlan(sys)
			if err != nil {
				return nil, err
			}
			eIntr, err := clusterStragglerSavings(sys, pipelines, 1, func(int) cluster.Plan { return eplan })
			if err != nil {
				return nil, err
			}
			eBoth, err := clusterStragglerSavings(sys, pipelines, 1.2, func(int) cluster.Plan { return eplan })
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{g.Name, em.Display, "EnvPipe", pct(eIntr), pct(eBoth)})
		}
	}
	return t, nil
}

// Figure8Slowdowns is the x axis of paper Figure 8.
var Figure8Slowdowns = []float64{1.0, 1.05, 1.1, 1.2, 1.3, 1.4, 1.5}

// Figure8 reproduces paper Figure 8 for one model and GPU: cluster-wide
// intrinsic+extrinsic savings versus straggler slowdown, one row per
// pipeline count of the strong-scaling grid. The final column reports
// T*/T, the paper's star marker.
func Figure8(modelName, display string, g *gpu.Model, sc Scale) (*Table, error) {
	header := []string{"Pipelines"}
	for _, s := range Figure8Slowdowns {
		header = append(header, fmt.Sprintf("%.2f", s))
	}
	header = append(header, "T*/T")
	t := &Table{
		Title:  fmt.Sprintf("Figure 8: %s on %s, cluster savings (%%) vs straggler slowdown", display, g.Name),
		Header: header,
	}
	for _, pt := range Table5() {
		cfg := emulationConfig(display, modelName, pt.Microbatches, 1)
		sys, err := BuildSystem(cfg, g, sc)
		if err != nil {
			return nil, err
		}
		row := []string{fmt.Sprint(pt.Pipelines)}
		for _, slow := range Figure8Slowdowns {
			plan, err := sys.perseusClusterPlan(slow)
			if err != nil {
				return nil, err
			}
			sav, err := clusterStragglerSavings(sys, pt.Pipelines, slow, plan)
			if err != nil {
				return nil, err
			}
			row = append(row, pct(sav))
		}
		row = append(row, fmt.Sprintf("%.2f", sys.Frontier.TStar()/sys.Frontier.Tmin()))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// WeakVsStrongScaling contrasts the paper's §6.3 observation: under weak
// scaling (per-pipeline batch held constant as pipelines grow), per-GPU
// savings stay flat because every pipeline keeps the same microbatch
// count; under strong scaling (Table 5) the per-pipeline microbatch count
// shrinks and the growing bubble share erodes the removable fraction.
func WeakVsStrongScaling(modelName, display string, g *gpu.Model, sc Scale) (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Weak vs strong scaling: %s on %s, intrinsic savings (%%)", display, g.Name),
		Header: []string{"Pipelines", "Strong scaling (Table 5 mb)", "Weak scaling (fixed mb)"},
		Notes: []string{
			"weak scaling holds per-pipeline batch constant; strong scaling shrinks it (§6.3)",
		},
	}
	grid := Table5()
	weakMB := grid[len(grid)-1].Microbatches // every pipeline keeps 12 microbatches
	for _, pt := range grid {
		strongSys, err := BuildSystem(emulationConfig(display, modelName, pt.Microbatches, 1), g, sc)
		if err != nil {
			return nil, err
		}
		strongRes, err := strongSys.SimulatePlan(strongSys.PerseusPlan(0))
		if err != nil {
			return nil, err
		}
		weakSys, err := BuildSystem(emulationConfig(display, modelName, weakMB, 1), g, sc)
		if err != nil {
			return nil, err
		}
		weakRes, err := weakSys.SimulatePlan(weakSys.PerseusPlan(0))
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(pt.Pipelines),
			pct(1 - strongRes.Energy/strongSys.Base.Energy),
			pct(1 - weakRes.Energy/weakSys.Base.Energy),
		})
	}
	return t, nil
}
