package forecast

import (
	"fmt"
	"math"

	"perseus/internal/grid"
)

// Revisions simulates an external forecast feed over a known truth
// trace: at every decision time each future interval's value is the
// truth multiplied by seeded lognormal noise built from one innovation
// per (interval, revision-step) pair. An interval L steps ahead carries
// the sum of L innovations — error standard deviation ≈ Sigma·√L — and
// each step that passes drains one innovation away, so successive
// forecasts revise toward the truth exactly the way operational
// day-ahead / hour-ahead carbon and price forecasts do. Everything is
// a pure function of (Seed, interval, step): forecasts are
// deterministic, replayable, and consistent across decision times.
type Revisions struct {
	// Truth is the actual trace, repeated cyclically.
	Truth *grid.Signal

	// HorizonS is the forecast coverage in seconds; 0 means the truth
	// horizon.
	HorizonS float64

	// Sigma is the per-step relative innovation magnitude; 0 means
	// 0.10 (≈ 35% error at a 12-step lead).
	Sigma float64

	// Seed selects the innovation stream.
	Seed int64

	// Level is the band quantile level; 0 means 0.9.
	Level float64
}

// Name implements Provider.
func (r *Revisions) Name() string { return "revisions" }

// At implements Provider.
func (r *Revisions) At(t float64) (*Forecast, error) {
	if err := checkIssueTime(r.Truth, t); err != nil {
		return nil, err
	}
	sigma := r.Sigma
	if sigma == 0 {
		sigma = 0.10
	}
	if sigma < 0 || sigma > 2 || math.IsNaN(sigma) {
		return nil, fmt.Errorf("forecast: revision sigma must be in [0, 2], got %v", r.Sigma)
	}
	level := r.Level
	if level == 0 {
		level = 0.9
	}
	if !(level > 0.5) || level >= 1 {
		return nil, fmt.Errorf("forecast: band level must be in (0.5, 1), got %v", level)
	}
	zq := math.Sqrt2 * math.Erfinv(2*level-1)

	steps := ExtendCyclic(r.Truth, horizonOr(r.HorizonS, r.Truth))
	cur := revealedSteps(steps, t) - 1 // index of the step containing t
	f := &Forecast{IssuedS: t, Level: level,
		Signal: &grid.Signal{Name: steps.Name + "/revised"}}
	for i, iv := range steps.Intervals {
		if i > cur {
			// Future: the remaining innovations for this interval are the
			// ones issued at steps cur+1 .. i; each passing step drops
			// one, never re-rolling the rest.
			var logC, logP float64
			for m := cur + 1; m <= i; m++ {
				logC += sigma * gauss(r.Seed, 0, i, m)
				logP += sigma * gauss(r.Seed, 1, i, m)
			}
			iv.CarbonGPerKWh *= math.Exp(logC)
			iv.PriceUSDPerKWh *= math.Exp(logP)
			w := math.Exp(zq * sigma * math.Sqrt(float64(i-cur)))
			f.Carbon = append(f.Carbon, Band{Lo: iv.CarbonGPerKWh / w, Hi: iv.CarbonGPerKWh * w})
			f.Price = append(f.Price, Band{Lo: iv.PriceUSDPerKWh / w, Hi: iv.PriceUSDPerKWh * w})
		} else {
			f.Carbon = append(f.Carbon, Band{Lo: iv.CarbonGPerKWh, Hi: iv.CarbonGPerKWh})
			f.Price = append(f.Price, Band{Lo: iv.PriceUSDPerKWh, Hi: iv.PriceUSDPerKWh})
		}
		f.Signal.Intervals = append(f.Signal.Intervals, iv)
	}
	return f, nil
}

// gauss derives a deterministic standard-normal-ish deviate from
// (seed, stream, interval, step) by hashing into three uniforms and
// summing them (Irwin–Hall, rescaled to unit variance) — platform-
// independent and allocation-free, like grid.Generate's jitter stream.
func gauss(seed int64, stream, i, m int) float64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 ^
		uint64(stream+1)*0xBF58476D1CE4E5B9 ^
		uint64(i+1)*0x94D049BB133111EB ^
		uint64(m+1)*0xD6E8FEB86659FD93
	var sum float64
	for r := 0; r < 3; r++ {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		sum += float64(z>>11) / float64(1<<53)
	}
	return (sum - 1.5) * 2
}
