package frontier

import (
	"math"
	"testing"

	"perseus/internal/gpu"
)

// edgeTable hand-builds a 3-point table with gaps between knots
// (units 10, 12, 15 at τ = 1 ms), so lookups can fall below Tmin, above
// T*, exactly on a knot, and between knots.
func edgeTable() *LookupTable {
	return &LookupTable{
		Unit:       1e-3,
		TminUnits:  10,
		TStarUnits: 15,
		Points: []TablePoint{
			{TimeUnits: 10, Energy: 100},
			{TimeUnits: 12, Energy: 80},
			{TimeUnits: 15, Energy: 65},
		},
	}
}

func TestLookupEdgeCases(t *testing.T) {
	lt := edgeTable()
	cases := []struct {
		name   string
		tPrime float64
		want   int64 // expected TimeUnits
	}{
		{"below Tmin", 0.005, 10},
		{"zero", 0, 10},
		{"negative", -1, 10},
		{"exactly Tmin", 0.010, 10},
		{"between Tmin and knot", 0.011, 10},
		{"exactly at a knot", 0.012, 12},
		{"between knots floors", 0.014, 12},
		{"exactly T*", 0.015, 15},
		{"above T* clamps (Eq. 2)", 0.5, 15},
		{"far above T*", math.Inf(1), 15},
	}
	for _, c := range cases {
		if got := lt.Lookup(c.tPrime); got.TimeUnits != c.want {
			t.Errorf("%s: Lookup(%v) = %d units, want %d", c.name, c.tPrime, got.TimeUnits, c.want)
		}
		wantIdx := map[int64]int{10: 0, 12: 1, 15: 2}[c.want]
		if got := lt.LookupIndex(c.tPrime); got != wantIdx {
			t.Errorf("%s: LookupIndex(%v) = %d, want %d", c.name, c.tPrime, got, wantIdx)
		}
	}
}

func TestLookupSinglePoint(t *testing.T) {
	lt := &LookupTable{
		Unit:       1e-3,
		TminUnits:  7,
		TStarUnits: 7,
		Points:     []TablePoint{{TimeUnits: 7, Energy: 42}},
	}
	for _, tPrime := range []float64{0, 0.001, 0.007, 1} {
		if got := lt.Lookup(tPrime); got.TimeUnits != 7 || got.Energy != 42 {
			t.Errorf("Lookup(%v) on 1-point table = %+v", tPrime, got)
		}
		if got := lt.LookupIndex(tPrime); got != 0 {
			t.Errorf("LookupIndex(%v) on 1-point table = %d", tPrime, got)
		}
	}
	if got := lt.Tmin(); got != 0.007 {
		t.Errorf("Tmin %v, want 0.007", got)
	}
}

func TestLookupEmptyTable(t *testing.T) {
	lt := &LookupTable{Unit: 1e-3}
	if got := lt.Lookup(0.5); got.TimeUnits != 0 || got.Energy != 0 || got.Freqs != nil {
		t.Errorf("Lookup on empty table = %+v, want zero point", got)
	}
	if got := lt.LookupIndex(0.5); got != -1 {
		t.Errorf("LookupIndex on empty table = %d, want -1", got)
	}
}

func TestAvgPowerMonotoneOnCharacterizedTable(t *testing.T) {
	g, p, opts := buildCase(t, "gpt3-1.3b", gpu.A100PCIe, 2, 4, 4, "1f1b")
	f := characterize(t, g, p, opts)
	lt := f.Table()
	for i := 1; i < len(lt.Points); i++ {
		if lt.PointTime(i) <= lt.PointTime(i-1) {
			t.Fatalf("point time not increasing at %d", i)
		}
		if lt.AvgPower(i) >= lt.AvgPower(i-1) {
			t.Fatalf("average power not strictly decreasing at point %d: %v -> %v",
				i, lt.AvgPower(i-1), lt.AvgPower(i))
		}
	}
	pt := lt.Points[0]
	if want := pt.Energy / (float64(pt.TimeUnits) * lt.Unit); lt.AvgPower(0) != want {
		t.Fatalf("AvgPower(0) = %v, want Energy/Time = %v", lt.AvgPower(0), want)
	}
}

func TestMergeDescent(t *testing.T) {
	a := edgeTable()
	b := &LookupTable{
		Unit:       1e-3,
		TminUnits:  20,
		TStarUnits: 22,
		Points: []TablePoint{
			{TimeUnits: 20, Energy: 300},
			{TimeUnits: 21, Energy: 280},
			{TimeUnits: 22, Energy: 270},
		},
	}
	start, steps := Merge([]MergeInput{
		{Table: a},
		{Table: b, PowerScale: 2},
	})
	if want := a.AvgPower(0) + 2*b.AvgPower(0); math.Abs(start-want) > 1e-9 {
		t.Fatalf("start power %v, want %v", start, want)
	}
	// Every table descends fully: 2 steps for a, 2 for b.
	if len(steps) != 4 {
		t.Fatalf("got %d steps, want 4", len(steps))
	}
	for i, st := range steps {
		if st.Loss <= 0 || st.Slope <= 0 {
			t.Fatalf("step %d has non-positive loss/slope: %+v", i, st)
		}
		if i > 0 && st.Power >= steps[i-1].Power {
			t.Fatalf("power not strictly decreasing at step %d", i)
		}
	}
	last := steps[len(steps)-1]
	if want := a.AvgPower(2) + 2*b.AvgPower(2); math.Abs(last.Power-want) > 1e-9 {
		t.Fatalf("final power %v, want all-T* %v", last.Power, want)
	}

	// A Start index excludes the points before it.
	start2, steps2 := Merge([]MergeInput{{Table: a, Start: 1}})
	if start2 != a.AvgPower(1) || len(steps2) != 1 || steps2[0].Point != 2 {
		t.Fatalf("start-index merge: power %v steps %+v", start2, steps2)
	}

	// An empty table contributes nothing and never advances.
	start3, steps3 := Merge([]MergeInput{{Table: &LookupTable{Unit: 1e-3}}, {Table: a}})
	if start3 != a.AvgPower(0) || len(steps3) != 2 {
		t.Fatalf("empty-table merge: power %v, %d steps", start3, len(steps3))
	}
	for _, st := range steps3 {
		if st.Table != 1 {
			t.Fatalf("empty table advanced: %+v", st)
		}
	}
}
