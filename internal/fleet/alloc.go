package fleet

import (
	"fmt"
	"math"

	"perseus/internal/frontier"
	"perseus/internal/plan"
)

// JobAlloc is one job's allocated operating point.
type JobAlloc struct {
	// ID names the job.
	ID string `json:"id"`

	// Point indexes the allocated point in the job's lookup table.
	Point int `json:"point"`

	// Time is the allocated planned iteration time in seconds.
	Time float64 `json:"time_s"`

	// Energy is one pipeline's per-iteration adjusted computation
	// energy at the point, in joules.
	Energy float64 `json:"energy_j"`

	// PowerW is the job's total power draw at the point: per-pipeline
	// average power times the pipeline count.
	PowerW float64 `json:"power_w"`

	// FloorTime is the job's operating floor: T_opt = min(T*, T')
	// under a straggler, Tmin otherwise. The allocation never plans
	// faster than the floor.
	FloorTime float64 `json:"floor_s"`

	// Loss is the job's weighted relative slowdown versus its floor:
	// Weight × (Time − FloorTime) / FloorTime. A straggler-bound job
	// sitting at its T_opt floor has zero loss — the straggler, not the
	// fleet, dictates its pace.
	Loss float64 `json:"loss"`
}

// Allocation is the fleet-wide outcome of the power-budget allocator.
type Allocation struct {
	// CapW is the cap the allocation was computed for (0 = uncapped).
	CapW float64 `json:"cap_w"`

	// PowerW is the fleet's total allocated power draw.
	PowerW float64 `json:"power_w"`

	// Loss is the total weighted relative slowdown across jobs.
	Loss float64 `json:"loss"`

	// Feasible reports whether the allocation meets the cap. When even
	// every job at its T* point exceeds the cap, the allocator returns
	// that minimum-power allocation with Feasible false.
	Feasible bool `json:"feasible"`

	// Jobs holds per-job allocations in input order.
	Jobs []JobAlloc `json:"jobs"`
}

// Summarize implements plan.Result. An allocation has no iteration or
// emissions accounting of its own — it reports the allocated power
// draw and whether the cap was met.
func (a *Allocation) Summarize() plan.Summary {
	return plan.Summary{PowerW: a.PowerW, Plans: 1, Feasible: a.Feasible}
}

// Planner adapts the power-cap allocator to the shared plan.Planner
// contract: a fixed job set divided under the request's CapW.
type Planner struct {
	Jobs []Job
}

// Name implements plan.Planner.
func (p *Planner) Name() string { return "fleet" }

// Plan implements plan.Planner. Only req.CapW is consumed — a capacity
// allocator has no target or deadline.
func (p *Planner) Plan(req plan.Request) (plan.Result, error) {
	if math.IsNaN(req.CapW) || math.IsInf(req.CapW, 0) || req.CapW < 0 {
		return nil, fmt.Errorf("fleet: power cap must be a finite non-negative number of watts, got %v", req.CapW)
	}
	alloc := Allocate(p.Jobs, req.CapW)
	return &alloc, nil
}

// Allocate picks each job's operating point on its own frontier so the
// fleet meets the power cap at minimum total weighted throughput loss
// (capW <= 0 = uncapped: every job runs at its floor).
//
// The algorithm is marginal-cost waterfilling over the merged frontiers
// (frontier.Merge): starting from every job at its floor, it repeatedly
// takes the one-point slowdown with the steepest watts-saved-per-loss
// slope until total power is under the cap, then prunes: any earlier
// step the final (overshooting) step made unnecessary is undone,
// most-loss first.
//
// Optimality, for convex frontiers (per-job watts-saved-per-loss slopes
// non-increasing — true of the E(t) curves Perseus characterizes): a
// greedy prefix's loss is minimal among all point combinations drawing
// at most the power it draws, by the standard marginal-analysis
// exchange argument — any combination with less loss fits under the
// sorted-slope concave envelope and therefore saves strictly less
// power. Consequently, when the cap coincides with a breakpoint of the
// merged descent the allocation matches exhaustive enumeration exactly;
// for caps between breakpoints the final step overshoots and the loss
// exceeds the constrained optimum by less than that single step's loss
// (one τ of one job's slowdown). alloc_test.go verifies both bounds by
// brute force.
func Allocate(jobs []Job, capW float64) Allocation {
	alloc := Allocation{CapW: capW, Feasible: true}
	if len(jobs) == 0 {
		return alloc
	}

	inputs := make([]frontier.MergeInput, len(jobs))
	floors := make([]int, len(jobs))
	floorTimes := make([]float64, len(jobs))
	for i := range jobs {
		j := &jobs[i]
		fi := j.floorIndex()
		ft := j.Table.PointTime(fi)
		floors[i], floorTimes[i] = fi, ft
		inputs[i] = frontier.MergeInput{
			Table:      j.Table,
			PowerScale: float64(j.pipelines()),
			LossWeight: j.weight() / ft,
			Start:      fi,
		}
	}
	startPower, steps := frontier.Merge(inputs)

	cur := append([]int(nil), floors...)
	power := startPower
	if capW > 0 && power > capW {
		// Per-job stacks of taken steps, for the prune pass.
		type taken struct{ dp, loss float64 }
		stacks := make([][]taken, len(jobs))
		k := 0
		for ; k < len(steps) && power > capW; k++ {
			st := steps[k]
			dp := power - st.Power
			power = st.Power
			cur[st.Table] = st.Point
			stacks[st.Table] = append(stacks[st.Table], taken{dp: dp, loss: st.Loss})
		}
		if power > capW {
			alloc.Feasible = false
		} else {
			// Prune: the last step may save more power than the cap
			// still needed, leaving earlier steps redundant. Undo the
			// costliest undoable step until none fits under the cap.
			// Only each job's most recent step is undoable, preserving
			// the per-job prefix structure.
			for {
				best, bestLoss := -1, 0.0
				for i := range stacks {
					n := len(stacks[i])
					if n == 0 {
						continue
					}
					top := stacks[i][n-1]
					if power+top.dp <= capW && top.loss > bestLoss {
						best, bestLoss = i, top.loss
					}
				}
				if best < 0 {
					break
				}
				n := len(stacks[best])
				power += stacks[best][n-1].dp
				stacks[best] = stacks[best][:n-1]
				cur[best]--
			}
		}
	}

	alloc.PowerW = power
	for i := range jobs {
		j := &jobs[i]
		pt := j.Table.Points[cur[i]]
		t := j.Table.PointTime(cur[i])
		ja := JobAlloc{
			ID:        j.ID,
			Point:     cur[i],
			Time:      t,
			Energy:    pt.Energy,
			PowerW:    float64(j.pipelines()) * j.Table.AvgPower(cur[i]),
			FloorTime: floorTimes[i],
			Loss:      j.weight() * (t - floorTimes[i]) / floorTimes[i],
		}
		alloc.Loss += ja.Loss
		alloc.Jobs = append(alloc.Jobs, ja)
	}
	return alloc
}

// AllocateMinEnergy returns the fleet energy-minimization allocation:
// every job at its own T* point, the minimum of its adjusted energy
// curve. This is the fleet's lowest sustainable power draw; its Loss is
// the throughput price of fleet-wide minimum-energy operation.
func AllocateMinEnergy(jobs []Job) Allocation {
	alloc := Allocation{Feasible: true}
	for i := range jobs {
		j := &jobs[i]
		last := len(j.Table.Points) - 1
		fi := j.floorIndex()
		ft := j.Table.PointTime(fi)
		t := j.Table.PointTime(last)
		ja := JobAlloc{
			ID:        j.ID,
			Point:     last,
			Time:      t,
			Energy:    j.Table.Points[last].Energy,
			PowerW:    float64(j.pipelines()) * j.Table.AvgPower(last),
			FloorTime: ft,
			Loss:      j.weight() * (t - ft) / ft,
		}
		alloc.PowerW += ja.PowerW
		alloc.Loss += ja.Loss
		alloc.Jobs = append(alloc.Jobs, ja)
	}
	return alloc
}
