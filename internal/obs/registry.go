// Package obs is the repository's dependency-free observability layer:
// typed Counter/Gauge/Histogram metrics in a concurrency-safe Registry
// with hand-rolled Prometheus text exposition (no external modules), a
// bounded in-memory event ring for tracing controller ticks, re-plans,
// and migrations (events.go), and an instrumenting decorator over the
// shared plan.Planner contract (planner.go).
//
// The server (internal/server) owns one Registry and one Ring and
// exposes them at GET /metrics and GET /debug/events; everything here
// is also usable standalone from experiments and CLIs.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// LatencyBuckets are the default fixed histogram buckets for latency
// observations in seconds: they span sub-microsecond cache hits through
// multi-second planner solves.
var LatencyBuckets = []float64{
	1e-6, 1e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing float64. The zero value is
// usable; Registry.Counter hands out registered ones.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds v; negative deltas are ignored (counters never decrease).
func (c *Counter) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds v (negative to subtract).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: observation counts per
// upper bound plus sum and count, with quantile estimation by linear
// interpolation inside the crossing bucket.
type Histogram struct {
	mu     sync.Mutex
	upper  []float64 // sorted finite upper bounds; +Inf is implicit
	counts []uint64  // per-bucket (non-cumulative), len(upper)+1
	count  uint64
	sum    float64
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v
	h.counts[i]++
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (e.g. 0.5, 0.99) by linear
// interpolation within the bucket the cumulative count crosses in —
// the same estimate Prometheus's histogram_quantile computes. Returns
// NaN with no observations; observations beyond the last finite bound
// report that bound (the estimate saturates, as histogram_quantile's
// does).
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return bucketQuantile(h.upper, h.counts, h.count, q)
}

// bucketQuantile is Quantile's core over explicit (non-cumulative)
// bucket counts — shared with the SLO engine, which computes windowed
// quantiles from bucket-count deltas between snapshots.
func bucketQuantile(upper []float64, counts []uint64, count uint64, q float64) float64 {
	if count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(count)
	var cum float64
	for i, c := range counts {
		next := cum + float64(c)
		if next >= rank && c > 0 {
			if i >= len(upper) { // +Inf bucket: saturate at last finite bound
				if len(upper) == 0 {
					return math.NaN()
				}
				return upper[len(upper)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = upper[i-1]
			}
			frac := (rank - cum) / float64(c)
			return lo + (upper[i]-lo)*frac
		}
		cum = next
	}
	if len(upper) == 0 {
		return math.NaN()
	}
	return upper[len(upper)-1]
}

// raw copies the non-cumulative per-bucket counts and the total.
func (h *Histogram) raw() (counts []uint64, count uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...), h.count
}

// snapshot returns cumulative bucket counts aligned with upper (+Inf
// last), the total count, and the sum.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum = make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		cum[i] = acc
	}
	return cum, h.count, h.sum
}

// metricKind is the exposition TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// family is one named metric and its label-partitioned series.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histograms only

	mu     sync.Mutex
	series map[string]any // rendered label block ("" or `{k="v",...}`) → *Counter | *Gauge | *Histogram
}

// newSeries materializes an empty series of the family's kind.
func (f *family) newSeries() any {
	switch f.kind {
	case kindCounter:
		return &Counter{}
	case kindGauge:
		return &Gauge{}
	default:
		return &Histogram{upper: f.buckets, counts: make([]uint64, len(f.buckets)+1)}
	}
}

// with returns (creating if needed) the series for the label values.
func (f *family) with(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := renderLabels(f.labels, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = f.newSeries()
		f.series[key] = s
	}
	return s
}

// delete drops the series for the label values, reporting whether it
// existed. Bounds unbounded cardinality: callers delete a label's
// series when the labeled entity (a job, say) is removed, and the
// exposition shrinks — a family left with no series is skipped
// entirely by WritePrometheus.
func (f *family) delete(values []string) bool {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := renderLabels(f.labels, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.series[key]
	delete(f.series, key)
	return ok
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the label values (created on first use).
func (v *CounterVec) With(values ...string) *Counter { return v.f.with(values).(*Counter) }

// Delete drops the series for the label values, reporting whether it
// existed. A later With re-creates it from zero.
func (v *CounterVec) Delete(values ...string) bool { return v.f.delete(values) }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With returns the gauge for the label values (created on first use).
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.with(values).(*Gauge) }

// Delete drops the series for the label values, reporting whether it
// existed. A later With re-creates it from zero.
func (v *GaugeVec) Delete(values ...string) bool { return v.f.delete(values) }

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the label values (created on first use).
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.with(values).(*Histogram) }

// Delete drops the series for the label values, reporting whether it
// existed. A later With re-creates it from zero.
func (v *HistogramVec) Delete(values ...string) bool { return v.f.delete(values) }

// Registry is a concurrency-safe set of metric families. Registration
// is idempotent for an identical (name, kind) pair; re-registering a
// name as a different kind panics — that is a programming error, not a
// runtime condition.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

func (r *Registry) family(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	if name == "" || strings.ContainsAny(name, " \n\"{}") {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered as a different kind or label set", name))
		}
		return f
	}
	if kind == kindHistogram {
		if len(buckets) == 0 {
			buckets = LatencyBuckets
		}
		buckets = append([]float64(nil), buckets...)
		sort.Float64s(buckets)
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...), buckets: buckets,
		series: map[string]any{},
	}
	r.fams[name] = f
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil).with(nil).(*Counter)
}

// CounterVec registers (or fetches) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, labels, nil)}
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil).with(nil).(*Gauge)
}

// GaugeVec registers (or fetches) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, labels, nil)}
}

// Histogram registers (or fetches) an unlabeled histogram; nil buckets
// use LatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, kindHistogram, nil, buckets).with(nil).(*Histogram)
}

// HistogramVec registers (or fetches) a labeled histogram family; nil
// buckets use LatencyBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.family(name, help, kindHistogram, labels, buckets)}
}

// histogramFamilySnapshot aggregates every series of the named
// histogram family into one bucket vector (all series of a family
// share the same bounds): the SLO engine's view of "the" latency
// distribution behind a labeled Vec. ok is false when the family is
// absent, not a histogram, or has no series yet.
func (r *Registry) histogramFamilySnapshot(name string) (upper []float64, counts []uint64, count uint64, ok bool) {
	r.mu.Lock()
	f, found := r.fams[name]
	r.mu.Unlock()
	if !found || f.kind != kindHistogram {
		return nil, nil, 0, false
	}
	f.mu.Lock()
	series := make([]any, 0, len(f.series))
	for _, s := range f.series {
		series = append(series, s)
	}
	f.mu.Unlock()
	if len(series) == 0 {
		return nil, nil, 0, false
	}
	counts = make([]uint64, len(f.buckets)+1)
	for _, s := range series {
		c, n := s.(*Histogram).raw()
		for i := range c {
			counts[i] += c[i]
		}
		count += n
	}
	return f.buckets, counts, count, true
}

// counterFamilyTotal sums every series of the named counter family
// (the SLO engine's ratio inputs). ok is false when the family is
// absent or not a counter; a registered family with no series yet
// reports 0, true — the metric exists, nothing has happened.
func (r *Registry) counterFamilyTotal(name string) (float64, bool) {
	r.mu.Lock()
	f, found := r.fams[name]
	r.mu.Unlock()
	if !found || f.kind != kindCounter {
		return 0, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var total float64
	for _, s := range f.series {
		total += s.(*Counter).Value()
	}
	return total, true
}

// HistogramQuantile estimates the q-quantile of the named histogram
// family, aggregated across all its series — the programmatic
// counterpart of the SLO engine's view, for embedders (the
// perseus-load harness reads p99 park-to-wake latency through it).
// ok is false when the family is absent, not a histogram, or empty.
func (r *Registry) HistogramQuantile(name string, q float64) (v float64, ok bool) {
	upper, counts, count, ok := r.histogramFamilySnapshot(name)
	if !ok || count == 0 {
		return 0, false
	}
	return bucketQuantile(upper, counts, count, q), true
}

// HistogramCount returns the total observation count of the named
// histogram family across all its series. ok is false when the family
// is absent or not a histogram.
func (r *Registry) HistogramCount(name string) (uint64, bool) {
	_, _, count, ok := r.histogramFamilySnapshot(name)
	return count, ok
}

// CounterValue sums every series of the named counter family. ok is
// false when the family is absent or not a counter.
func (r *Registry) CounterValue(name string) (float64, bool) {
	return r.counterFamilyTotal(name)
}

// GaugeValue sums every series of the named gauge family. ok is false
// when the family is absent or not a gauge.
func (r *Registry) GaugeValue(name string) (float64, bool) {
	r.mu.Lock()
	f, found := r.fams[name]
	r.mu.Unlock()
	if !found || f.kind != kindGauge {
		return 0, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var total float64
	for _, s := range f.series {
		total += s.(*Gauge).Value()
	}
	return total, true
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by
// label block, HELP text and label values escaped per the format's
// rules. The output is deterministic for a given registry state — the
// property the golden exposition test pins.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	fams := make([]*family, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		series := make([]any, len(keys))
		for i, k := range keys {
			series[i] = f.series[k]
		}
		f.mu.Unlock()
		if len(keys) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for i, key := range keys {
			switch s := series[i].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, key, formatFloat(s.Value()))
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, key, formatFloat(s.Value()))
			case *Histogram:
				cum, count, sum := s.snapshot()
				for j, ub := range f.buckets {
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, addLabel(key, "le", formatFloat(ub)), cum[j])
				}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, addLabel(key, "le", "+Inf"), count)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, key, formatFloat(sum))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, key, count)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// renderLabels builds the `{k="v",...}` block ("" with no labels).
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// addLabel appends one more label pair to a rendered block (for the
// histogram `le` bound).
func addLabel(block, name, value string) string {
	pair := name + `="` + escapeLabel(value) + `"`
	if block == "" {
		return "{" + pair + "}"
	}
	return block[:len(block)-1] + "," + pair + "}"
}

// escapeLabel escapes a label value per the exposition format:
// backslash, double-quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes HELP text: backslash and newline only.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus clients do.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
