package forecast

import (
	"fmt"
	"math"

	"perseus/internal/grid"
	"perseus/internal/plan"
	"perseus/internal/region"
)

// ForecastRegion couples one datacenter region (whose Signal is the
// *truth* trace) with the forecast provider an operator would actually
// see for that region's grid.
type ForecastRegion struct {
	Region   region.Region
	Provider Provider
}

// RegionOptions parameterizes a multi-region rolling-horizon run.
type RegionOptions struct {
	// Objective selects what to minimize; "" means carbon.
	Objective grid.Objective

	// Migration is the fixed pause-cost of moving a job between
	// regions.
	Migration region.MigrationCost

	// DeadlineS is the run horizon in signal seconds; 0 means the
	// longest truth trace. Per-job deadlines (region.Job.DeadlineS)
	// tighten it per job.
	DeadlineS float64

	// PlanQuantile is the forecast quantile each re-plan sees; 0 or
	// 0.5 plans on the point forecast.
	PlanQuantile float64

	// HysteresisMargin controls the switching-cost rule under forecast
	// revisions: every re-plan after the first sees the migration cost
	// (downtime and transfer energy) scaled by this factor, so it only
	// migrates when the predicted savings exceed the real migration
	// cost times the margin. Execution always charges the real cost.
	// 0 means 1 (the planner's raw behavior). Margins above 1 damp
	// revision-noise flip-flopping; margins below 1 counteract
	// rolling-horizon hesitation — the shrinking remaining window
	// understates a move's value (savings accrue over the rest of the
	// run, but each re-plan only sees to the deadline), so the raw
	// controller systematically under-migrates and can lose per-seed to
	// a lucky plan-once. region_mpc_test.go pins a margin restoring
	// per-seed parity on the bundled pair.
	HysteresisMargin float64
}

// planMigration resolves the migration cost a re-plan at decision time
// d sees: the initial plan (d = 0, committing nothing yet) and
// margin 0 keep the real cost.
func (o RegionOptions) planMigration(d float64) region.MigrationCost {
	m := o.Migration
	if d > 0 && o.HysteresisMargin > 0 {
		m.DowntimeS *= o.HysteresisMargin
		m.EnergyJ *= o.HysteresisMargin
	}
	return m
}

// RegionJobOutcome is one job's realized multi-region outcome.
type RegionJobOutcome struct {
	JobID string `json:"job_id"`

	// Iterations and the embedded plan.Account are realized against
	// each region's truth trace (migration transfer energy included);
	// the embedded plan.Predicted is what the forecasts in force
	// predicted for the same execution.
	Iterations float64 `json:"iterations"`
	plan.Account
	plan.Predicted

	// Migrations counts executed region changes; DowntimeS and
	// TransferJ total their pause cost.
	Migrations int     `json:"migrations"`
	DowntimeS  float64 `json:"downtime_s"`
	TransferJ  float64 `json:"transfer_j"`

	// Path is the executed placement per decision span ("" = paused).
	Path []string `json:"path"`

	// Feasible reports whether the job completed its target.
	Feasible bool `json:"feasible"`
}

// RegionOutcome is a multi-region controller run's realized result.
type RegionOutcome struct {
	Strategy string             `json:"strategy"`
	Plans    int                `json:"plans"`
	Jobs     []RegionJobOutcome `json:"jobs"`

	// WarmStarts counts re-plans whose forecasts were unchanged across
	// the remaining window in every region, letting descent seed from
	// the previous tick's placement instead of starting from scratch.
	WarmStarts int `json:"warm_starts,omitempty"`

	plan.Account
	plan.Predicted

	Feasible bool `json:"feasible"`
}

// Summarize implements plan.Result.
func (o *RegionOutcome) Summarize() plan.Summary {
	s := plan.Summary{Account: o.Account, Plans: o.Plans, Feasible: o.Feasible}
	for i := range o.Jobs {
		s.Iterations += o.Jobs[i].Iterations
	}
	return s
}

// ReplanRegions is the multi-region rolling-horizon controller: at
// every merged interval boundary it fetches each region's latest
// forecast, re-runs region.Optimize over the remaining window — every
// job's Origin set to the region it currently occupies, so moving away
// is charged as a migration — and executes the first span of the fresh
// joint plan against the regions' truth traces.
func ReplanRegions(regs []ForecastRegion, jobs []region.Job, opts RegionOptions) (*RegionOutcome, error) {
	return runRegions(regs, jobs, opts, true)
}

// PlanOnceRegions plans the joint schedule on the first forecasts and
// executes it to the end — the multi-region plan-once baseline.
func PlanOnceRegions(regs []ForecastRegion, jobs []region.Job, opts RegionOptions) (*RegionOutcome, error) {
	return runRegions(regs, jobs, opts, false)
}

// OracleRegions runs the perfect-foresight multi-region baseline: plan
// once on the truth traces themselves.
func OracleRegions(regions []region.Region, jobs []region.Job, opts RegionOptions) (*RegionOutcome, error) {
	regs := make([]ForecastRegion, len(regions))
	for i, r := range regions {
		regs[i] = ForecastRegion{Region: r, Provider: &Perfect{Truth: r.Signal, HorizonS: opts.DeadlineS}}
	}
	out, err := runRegions(regs, jobs, opts, false)
	if err != nil {
		return nil, err
	}
	out.Strategy = "oracle"
	return out, nil
}

func runRegions(regs []ForecastRegion, jobs []region.Job, opts RegionOptions, replanEvery bool) (*RegionOutcome, error) {
	if len(regs) == 0 {
		return nil, fmt.Errorf("forecast: region controller needs at least one region")
	}
	truths := make([]*grid.Signal, len(regs))
	maxH := 0.0
	for i := range regs {
		r := &regs[i]
		if r.Region.Signal == nil || r.Region.Signal.Horizon() <= 0 {
			return nil, fmt.Errorf("forecast: region %q needs a truth signal", r.Region.Name)
		}
		if r.Provider == nil {
			return nil, fmt.Errorf("forecast: region %q needs a forecast provider", r.Region.Name)
		}
		truths[i] = r.Region.Signal
		if h := r.Region.Signal.Horizon(); h > maxH {
			maxH = h
		}
	}
	deadline := opts.DeadlineS
	if deadline == 0 {
		deadline = maxH
	}
	if math.IsNaN(deadline) || deadline <= 0 {
		return nil, fmt.Errorf("forecast: deadline must be positive, got %v", opts.DeadlineS)
	}
	q := opts.PlanQuantile
	if q == 0 {
		q = 0.5
	}

	type jobState struct {
		remaining float64
		deadline  float64
		current   string  // region currently occupied ("" = unplaced)
		pausedTo  float64 // checkpoint transfer in flight until this time
		out       RegionJobOutcome
	}
	states := make([]*jobState, len(jobs))
	for j := range jobs {
		d := jobs[j].DeadlineS
		if d <= 0 || d > deadline {
			d = deadline
		}
		states[j] = &jobState{
			remaining: jobs[j].Target,
			deadline:  d,
			current:   jobs[j].Origin,
			out:       RegionJobOutcome{JobID: jobs[j].ID},
		}
	}

	decisions := []float64{0}
	if replanEvery {
		decisions = append(decisions, grid.MergedBoundaries(truths, deadline)...)
	}

	mode := "plan-once"
	if replanEvery {
		mode = "mpc"
		if q > 0.5 {
			mode = fmt.Sprintf("mpc@q%.2f", q)
		}
	}
	out := &RegionOutcome{Strategy: regs[0].Provider.Name() + "/" + mode}

	var prevPlan *region.Plan    // previous tick's joint plan (for warm-start seeds)
	var prevD float64            // decision time it was planned at
	var prevViews []*grid.Signal // per-region q-views it was planned on (absolute time)
	for di, d := range decisions {
		end := deadline
		if di+1 < len(decisions) {
			end = decisions[di+1]
		}

		// Build the forecast view of every region at this decision time
		// and the remaining planning problem for every unfinished job.
		fregions := make([]region.Region, len(regs))
		fsignals := make([]*grid.Signal, len(regs)) // point forecasts, absolute time
		views := make([]*grid.Signal, len(regs))    // q-views, absolute time
		warm := prevPlan != nil
		for i := range regs {
			fc, err := regs[i].Provider.At(d)
			if err != nil {
				return nil, err
			}
			if err := fc.Validate(); err != nil {
				return nil, err
			}
			if fc.Signal.Horizon() < deadline-1e-9 {
				return nil, fmt.Errorf("forecast: region %q forecast horizon %v below deadline %v",
					regs[i].Region.Name, fc.Signal.Horizon(), deadline)
			}
			fsignals[i] = fc.Signal
			views[i] = fc.At(q)
			warm = warm && SignalEqualWithin(prevViews[i], views[i], d, deadline)
			fregions[i] = region.Region{
				Name: regs[i].Region.Name, GPUs: regs[i].Region.GPUs,
				CapW: regs[i].Region.CapW, Signal: Window(views[i], d, deadline),
			}
		}
		var rjobs []region.Job
		var live []int
		for j := range jobs {
			st := states[j]
			if st.remaining <= 1e-9*(1+jobs[j].Target) || st.deadline <= d+1e-9 {
				continue
			}
			rj := jobs[j]
			rj.Target = st.remaining
			rj.DeadlineS = st.deadline - d
			rj.Origin = st.current
			rjobs = append(rjobs, rj)
			live = append(live, j)
		}
		if len(rjobs) == 0 {
			break
		}
		// The switching-cost margin: re-plans see a scaled migration
		// cost (see RegionOptions.HysteresisMargin), while execution
		// below always charges the real one.
		ropts := region.Options{Objective: opts.Objective, Migration: opts.planMigration(d)}
		if warm {
			// Warm start: no forecast moved inside the remaining window,
			// so the previous tick's placement is a near-optimal seed —
			// descent starts there and accepts only strict improvements.
			ropts.Seeds = seedsFromPlan(prevPlan, prevD, d, rjobs)
			out.WarmStarts++
		}
		plan, err := region.Optimize(fregions, rjobs, ropts)
		if err != nil {
			return nil, err
		}
		out.Plans++
		prevPlan, prevD, prevViews = plan, d, views

		span := end - d
		for pi, jp := range plan.Jobs {
			st := states[live[pi]]
			job := &jobs[live[pi]]
			// Residue of a checkpoint transfer begun in an EARLIER span:
			// the plan just built knows nothing about it (it only sees
			// the new Origin), so execution must keep idling through it.
			// In-span migration downtime is handled separately below: the
			// plan encodes it (compile force-idles the arrival), so the
			// cross-span residue alone must not clip work scheduled
			// before the arrival.
			pausePrev := st.pausedTo
			scale := 1.0
			if job.PowerScale > 0 {
				scale = job.PowerScale
			}
			// arrivals lists this span's migration arrival times: under a
			// sub-1 hysteresis margin the plan force-idles less than the
			// real transfer, and the overrun must be clipped at execution.
			var arrivals []float64
			spanRegion := ""
			for _, a := range jp.Assignments {
				if a.StartS >= span-1e-9 {
					break
				}
				rIdx := a.Region
				if rIdx >= 0 {
					spanRegion = plan.Regions[rIdx]
					st.current = spanRegion
				}
				if a.Migrate {
					st.out.Migrations++
					st.out.DowntimeS += opts.Migration.DowntimeS
					st.out.TransferJ += opts.Migration.EnergyJ
					st.out.EnergyJ += opts.Migration.EnergyJ
					at := d + a.StartS
					arrivals = append(arrivals, at)
					// The checkpoint transfer may outlast this decision
					// span; the residue must still pause the job after the
					// next re-plan (which only knows the new Origin).
					if until := at + opts.Migration.DowntimeS; until > st.pausedTo {
						st.pausedTo = until
					}
					if rIdx >= 0 {
						_, c, usd := grid.Accrue(truths[rIdx], at, at+1, opts.Migration.EnergyJ)
						st.out.CarbonG += c
						st.out.CostUSD += usd
						_, pc, pusd := grid.Accrue(fsignals[rIdx], at, at+1, opts.Migration.EnergyJ)
						st.out.PredCarbonG += pc
						st.out.PredCostUSD += pusd
					}
				}
			}
			st.out.Path = append(st.out.Path, spanRegion)

			// Execute the temporal plan's slices within the span, each
			// accrued against the placed region's truth trace, dropping
			// the slice time falling inside an earlier span's transfer
			// residue — the schedule is not re-packed, the work simply
			// does not happen.
			for _, ip := range jp.Temporal.Intervals {
				if ip.StartS >= span-1e-9 {
					break
				}
				rIdx := regionAt(jp.Assignments, ip.StartS)
				if rIdx < 0 {
					continue
				}
				slices := ip.Slices
				absStart := d + ip.StartS
				if pausePrev > absStart {
					slices, absStart = clipPaused(slices, absStart, pausePrev)
				}
				// Downtime from migrations inside this span is encoded in
				// the plan itself (compile force-idles the arrival) — but
				// only at the margin-scaled duration. Work the plan put
				// between the scaled and the real transfer end does not
				// physically happen: clip it. Intervals before the arrival
				// are untouched (their absStart precedes it), so this is
				// exact, and a margin >= 1 never clips (the plan already
				// idles at least the real transfer).
				for _, at := range arrivals {
					until := at + opts.Migration.DowntimeS
					if absStart >= at-1e-9 && absStart < until-1e-9 {
						slices, absStart = clipPaused(slices, absStart, until)
					}
				}
				ei := ExecuteSlices(job.Table, truths[rIdx], fsignals[rIdx], scale,
					absStart, d+math.Min(ip.EndS, span), slices)
				st.remaining -= ei.Iterations
				st.out.Iterations += ei.Iterations
				st.out.EnergyJ += ei.EnergyJ
				st.out.CarbonG += ei.CarbonG
				st.out.CostUSD += ei.CostUSD
				st.out.PredCarbonG += ei.PredCarbonG
				st.out.PredCostUSD += ei.PredCostUSD
			}
		}
	}

	out.Feasible = true
	for j, st := range states {
		st.out.Feasible = st.remaining <= 1e-6*(1+jobs[j].Target)
		if !st.out.Feasible {
			out.Feasible = false
		}
		out.EnergyJ += st.out.EnergyJ
		out.CarbonG += st.out.CarbonG
		out.CostUSD += st.out.CostUSD
		out.PredCarbonG += st.out.PredCarbonG
		out.PredCostUSD += st.out.PredCostUSD
		out.Jobs = append(out.Jobs, st.out)
	}
	return out, nil
}

// seedsFromPlan converts the previous tick's joint plan (planned at
// prevD) into warm-start seed spans for the jobs still live at the new
// decision time d: each assignment's span shifted into the new plan's
// relative time, with the already-executed part clipped away. Spans
// are time-based because the common cell grid shifts between ticks.
func seedsFromPlan(prev *region.Plan, prevD, d float64, rjobs []region.Job) map[string][]region.SeedSpan {
	live := make(map[string]bool, len(rjobs))
	for i := range rjobs {
		live[rjobs[i].ID] = true
	}
	seeds := make(map[string][]region.SeedSpan, len(rjobs))
	shift := prevD - d // previous-plan-relative -> new-plan-relative
	for i := range prev.Jobs {
		jp := &prev.Jobs[i]
		if !live[jp.JobID] {
			continue
		}
		var spans []region.SeedSpan
		for _, a := range jp.Assignments {
			start, end := a.StartS+shift, a.EndS+shift
			if end <= 1e-9 {
				continue // fully executed before the new decision time
			}
			if start < 0 {
				start = 0
			}
			name := ""
			if a.Region >= 0 {
				name = prev.Regions[a.Region]
			}
			spans = append(spans, region.SeedSpan{StartS: start, EndS: end, Region: name})
		}
		if len(spans) > 0 {
			seeds[jp.JobID] = spans
		}
	}
	return seeds
}

// clipPaused drops the slice time scheduled before `until` (slices run
// back-to-back from startS) and returns the surviving slices with the
// new execution start.
func clipPaused(slices []grid.Slice, startS, until float64) ([]grid.Slice, float64) {
	at := startS
	var out []grid.Slice
	for _, sl := range slices {
		end := at + sl.Seconds
		if end <= until {
			at = end
			continue // fully inside the transfer pause
		}
		if at < until {
			sl.Seconds = end - until
			at = until
		}
		out = append(out, sl)
		at += sl.Seconds
	}
	return out, math.Max(startS, math.Min(until, startS+sum(slices)))
}

func sum(slices []grid.Slice) float64 {
	var s float64
	for _, sl := range slices {
		s += sl.Seconds
	}
	return s
}

// regionAt finds the assignment covering relative time t and returns
// its region index (Paused when none).
func regionAt(assignments []region.Assignment, t float64) int {
	for _, a := range assignments {
		if t >= a.StartS-1e-9 && t < a.EndS-1e-9 {
			return a.Region
		}
	}
	return region.Paused
}
