package fit

import (
	"math"
	"math/rand"
	"testing"

	"perseus/internal/gpu"
)

func TestRecoverSynthetic(t *testing.T) {
	// Generate points from a known exponential and check recovery.
	truth := Exp{A: 50, B: -0.08, C: 200, T0: 100}
	var ts, es []float64
	for x := 100.0; x <= 160; x += 4 {
		ts = append(ts, x)
		es = append(es, truth.Eval(x))
	}
	got, err := FitExp(ts, es)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{100, 113, 127, 142, 160} {
		want := truth.Eval(x)
		if rel := math.Abs(got.Eval(x)-want) / want; rel > 1e-3 {
			t.Errorf("Eval(%v) = %v, want %v (rel err %.2e)", x, got.Eval(x), want, rel)
		}
	}
}

func TestRecoverWithNoise(t *testing.T) {
	truth := Exp{A: 30, B: -0.15, C: 80, T0: 0}
	rng := rand.New(rand.NewSource(5))
	var ts, es []float64
	for x := 0.0; x <= 40; x += 2 {
		ts = append(ts, x)
		es = append(es, truth.Eval(x)*(1+0.005*rng.NormFloat64()))
	}
	got, err := FitExp(ts, es)
	if err != nil {
		t.Fatal(err)
	}
	if r := RMSE(got, ts, es); r > 1.0 {
		t.Errorf("noisy fit RMSE %v too large", r)
	}
}

func TestFitGPUCurve(t *testing.T) {
	// Figure 11 (Appendix D): the exponential should be a natural fit to
	// GPU Pareto-optimal (time, energy) measurements. Require a good
	// relative fit on every preset for a representative computation.
	for _, m := range []*gpu.Model{gpu.A100PCIe, gpu.A40} {
		pts := m.ParetoPoints(0.15, m.MemBoundFwd, m.BlockingW)
		var ts, es []float64
		for _, p := range pts {
			ts = append(ts, p.Time)
			es = append(es, p.Energy)
		}
		c, err := FitExp(ts, es)
		if err != nil {
			t.Fatal(err)
		}
		mean := 0.0
		for _, e := range es {
			mean += e
		}
		mean /= float64(len(es))
		if r := RMSE(c, ts, es); r/math.Abs(mean) > 0.05 {
			t.Errorf("%s: exponential fit relative RMSE %.3f > 5%%", m.Name, r/math.Abs(mean))
		}
	}
}

func TestFitMonotoneDecreasing(t *testing.T) {
	// Over the fitted range, the curve must be decreasing (slowing down
	// never increases Pareto energy); otherwise capacities e+ / e- from
	// the fit would go negative.
	m := gpu.A40
	pts := m.ParetoPoints(0.08, m.MemBoundBwd, m.BlockingW)
	var ts, es []float64
	for _, p := range pts {
		ts = append(ts, p.Time)
		es = append(es, p.Energy)
	}
	c, err := FitExp(ts, es)
	if err != nil {
		t.Fatal(err)
	}
	if c.B >= 0 || c.A <= 0 {
		t.Fatalf("fit %v should decay (A>0, B<0)", c)
	}
	prev := c.Eval(ts[0])
	for x := ts[0]; x <= ts[len(ts)-1]; x += (ts[len(ts)-1] - ts[0]) / 200 {
		cur := c.Eval(x)
		if cur > prev+1e-9 {
			t.Fatalf("fit not monotone decreasing at t=%v", x)
		}
		prev = cur
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitExp([]float64{1, 2}, []float64{3, 2}); err == nil {
		t.Error("2 points should error")
	}
	if _, err := FitExp([]float64{1, 2, 2}, []float64{3, 2, 1}); err == nil {
		t.Error("non-increasing times should error")
	}
	if _, err := FitExp([]float64{1, 2, 3}, []float64{3, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitPiecewise([]float64{1}, []float64{1}); err == nil {
		t.Error("1 point should error")
	}
	if _, err := FitPiecewise([]float64{2, 1}, []float64{1, 2}); err == nil {
		t.Error("decreasing times should error")
	}
}

func TestPiecewiseInterpolation(t *testing.T) {
	p, err := FitPiecewise([]float64{0, 10, 20}, []float64{100, 50, 40})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{
		{0, 100}, {10, 50}, {20, 40}, {5, 75}, {15, 45},
		{-10, 150}, // extrapolate left
		{30, 30},   // extrapolate right
	}
	for _, c := range cases {
		if got := p.Eval(c.t); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Eval(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestExpString(t *testing.T) {
	e := Exp{A: 1, B: -2, C: 3, T0: 4}
	if e.String() == "" {
		t.Error("empty String()")
	}
}
