package obs

import (
	"testing"

	"perseus/internal/plan"
)

func spanEntry(start, end, energy, carbon, drift, predReal float64) LedgerEntry {
	return LedgerEntry{
		StartUnixS: start, EndUnixS: end, Kind: LedgerKindSpan,
		BloatSpan: plan.DecomposeSpan(plan.SpanInputs{
			Realized:   plan.Account{EnergyJ: energy, CarbonG: carbon},
			Iterations: 1, FloorJ: 0.8 * energy, TminJ: 0.9 * energy,
			PredC: predReal - drift, PredRealC: predReal,
		}),
	}
}

func TestLedgerRingBounds(t *testing.T) {
	l := NewLedger(4)
	for i := 0; i < 10; i++ {
		l.Settle("job-1", spanEntry(float64(i), float64(i+1), 100, 10, 0, 0))
	}
	view, ok := l.Job("job-1", 0)
	if !ok {
		t.Fatal("job-1 missing")
	}
	if len(view.Entries) != 4 {
		t.Fatalf("retained %d entries, want ring cap 4", len(view.Entries))
	}
	if view.Totals.Entries != 10 || view.Totals.Dropped != 6 {
		t.Fatalf("totals entries/dropped = %d/%d, want 10/6", view.Totals.Entries, view.Totals.Dropped)
	}
	// Oldest-first: the 4 retained entries are spans 6..9.
	for i, e := range view.Entries {
		if e.StartUnixS != float64(6+i) {
			t.Fatalf("entry %d start = %v, want %v", i, e.StartUnixS, 6+i)
		}
	}
	// Totals cover all 10 settles, not just the retained ring.
	if view.Totals.EnergyJ != 1000 {
		t.Fatalf("totals energy = %v, want 1000", view.Totals.EnergyJ)
	}
	if !view.Totals.Conserved(1e-12) {
		t.Fatalf("totals must conserve: %+v", view.Totals.BloatSpan)
	}
	// n caps the returned tail, newest retained.
	view, _ = l.Job("job-1", 2)
	if len(view.Entries) != 2 || view.Entries[0].StartUnixS != 8 {
		t.Fatalf("n=2 tail = %+v", view.Entries)
	}
}

func TestLedgerFleetAndRemove(t *testing.T) {
	l := NewLedger(0)
	l.Settle("job-1", spanEntry(0, 1, 100, 10, 0, 0))
	l.Settle("job-2", spanEntry(0, 1, 300, 30, 0, 0))
	if got := l.Jobs(); len(got) != 2 || got[0] != "job-1" || got[1] != "job-2" {
		t.Fatalf("Jobs() = %v", got)
	}
	fleet := l.Fleet()
	if fleet.EnergyJ != 400 || fleet.Entries != 2 {
		t.Fatalf("fleet = %+v", fleet)
	}
	if !l.Remove("job-1") {
		t.Fatal("Remove(job-1) = false")
	}
	if l.Remove("job-1") {
		t.Fatal("second Remove(job-1) = true")
	}
	if _, ok := l.Job("job-1", 0); ok {
		t.Fatal("job-1 still present after Remove")
	}
	// Fleet history does not rewrite itself when a job leaves.
	if fleet2 := l.Fleet(); fleet2.EnergyJ != 400 || fleet2.Entries != 2 {
		t.Fatalf("fleet after remove = %+v", fleet2)
	}
}

func TestLedgerWorstDriftJob(t *testing.T) {
	l := NewLedger(0)
	if id, ratio := l.WorstDriftJob(); id != "" || ratio != 0 {
		t.Fatalf("empty ledger worst = %q/%v", id, ratio)
	}
	// job-1: |drift| 10 over covered 90 → ratio 10/100.
	l.Settle("job-1", spanEntry(0, 1, 100, 10, 10, 90))
	// job-2: |drift| 40 over covered 60 → ratio 40/100 (worst).
	l.Settle("job-2", spanEntry(0, 1, 100, 10, -40, 60))
	// job-3: no forecast coverage → skipped.
	l.Settle("job-3", spanEntry(0, 1, 100, 10, 0, 0))
	id, ratio := l.WorstDriftJob()
	if id != "job-2" {
		t.Fatalf("worst = %q, want job-2", id)
	}
	if ratio < 0.399 || ratio > 0.401 {
		t.Fatalf("ratio = %v, want 0.4", ratio)
	}
	// Signed drift cancels in DriftC but not in AbsDriftC.
	l.Settle("job-2", spanEntry(1, 2, 100, 10, 40, 60))
	view, _ := l.Job("job-2", 0)
	if view.Totals.DriftC != 0 {
		t.Fatalf("signed drift should cancel: %v", view.Totals.DriftC)
	}
	if view.Totals.AbsDriftC != 80 {
		t.Fatalf("abs drift = %v, want 80", view.Totals.AbsDriftC)
	}
}
